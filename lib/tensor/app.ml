open Sim
open Netsim

let m_catchup_msgs = Telemetry.Registry.counter "replicator.catchup_msgs"
let m_catchup_bytes = Telemetry.Registry.counter "replicator.catchup_bytes"
let m_catchup_s = Telemetry.Registry.histogram "replicator.catchup_s"

type vrf_spec = {
  vrf : string;
  vip : Addr.t;
  peer_addr : Addr.t;
  peer_asn : int option;
  passive : bool;
  run_bfd : bool;
  policy_in : Bgp.Policy.t;
  policy_out : Bgp.Policy.t;
  ibgp_peers : (Addr.t * bool) list;
}

let vrf_spec ~vrf ~vip ~peer_addr ?peer_asn ?(passive = false)
    ?(run_bfd = true) ?(ibgp_peers = []) () =
  {
    vrf;
    vip;
    peer_addr;
    peer_asn;
    passive;
    run_bfd;
    policy_in = Bgp.Policy.empty;
    policy_out = Bgp.Policy.empty;
    ibgp_peers;
  }

type config = {
  service_id : string;
  store_addr : Addr.t;
  store_replica : Addr.t option;
  store_retry : bool;
  controller_addr : Addr.t option;
  local_asn : int;
  hold_time : int;
  degrade_frac : float;
  vrfs : vrf_spec list;
  profile : Bgp.Speaker.profile;
  replicate : bool;
  ack_hold : bool;
  tcp_restore_cost : Time.span;
}

let config ~service_id ~store_addr ?store_replica ?(store_retry = false)
    ?controller_addr ~local_asn ?(hold_time = 90) ?(degrade_frac = 0.)
    ?(profile = Baseline.tensor) ?(replicate = true) ?(ack_hold = true)
    ?(tcp_restore_cost = Time.sec 1) vrfs =
  if degrade_frac < 0. || degrade_frac >= 1. then
    invalid_arg "App.config: degrade_frac must be in [0, 1)";
  {
    service_id;
    store_addr;
    store_replica;
    store_retry;
    controller_addr;
    local_asn;
    hold_time;
    degrade_frac;
    vrfs;
    profile;
    replicate;
    ack_hold;
    tcp_restore_cost;
  }

type mode = Fresh | Recover

type per_vrf = {
  spec : vrf_spec;
  repl : Replicator.t;
  mutable peer : Bgp.Speaker.peer option;
  mutable bfd : Bfd.session option;
  mutable trimmer : Engine.timer option;
  mutable established : bool;
}

type t = {
  cfg : config;
  cont : Orch.Container.t;
  boot_mode : mode;
  mutable spk : Bgp.Speaker.t option;
  mutable stack : Tcp.stack option;
  mutable client : Store.Client.t option;
  mutable per_vrf : per_vrf list;
  mutable crashed : bool;
  mutable bfd_up_cb : vrf:string -> Bfd.session -> unit;
  mutable recovered_cb : unit -> unit;
  mutable tcp_synced_cb : vrf:string -> unit;
}

let container t = t.cont
let speaker t = t.spk

let find_vrf t vrf =
  List.find_opt (fun pv -> String.equal pv.spec.vrf vrf) t.per_vrf

let replicator t ~vrf =
  match find_vrf t vrf with Some pv -> Some pv.repl | None -> None

let bfd_session t ~vrf =
  match find_vrf t vrf with Some pv -> pv.bfd | None -> None

let session_established t ~vrf =
  match find_vrf t vrf with
  | Some pv -> (
      match pv.peer with
      | Some p -> Bgp.Speaker.peer_state p = Bgp.Session.Established
      | None -> false)
  | None -> false

let on_bfd_up t f = t.bfd_up_cb <- f
let on_recovered t f = t.recovered_cb <- f
let on_tcp_synced t f = t.tcp_synced_cb <- f

let routes t ~vrf =
  match t.spk with
  | Some spk -> (
      try Bgp.Rib.size (Bgp.Speaker.rib spk ~vrf) with Not_found -> 0)
  | None -> 0

let engine t = Node.engine (Orch.Container.node t.cont)

(* --- Shared plumbing -------------------------------------------------------- *)

(* Control records (session metadata, BFD discriminators) must reach the
   store even across transient network trouble: retry until
   acknowledged. *)
let persistent_set t client pairs =
  let rec attempt () =
    if not t.crashed then
      Store.Client.set client ~timeout:(Time.sec 1) pairs (function
        | Ok () -> ()
        | Error `Timeout ->
            ignore
              (Engine.schedule_after (engine t) ~label:"app.store_retry"
                 (Time.ms 200) attempt))
  in
  attempt ()

let hooks_for t =
  (* Only the VRF's external session is NSR-replicated; cluster-internal
     iBGP sessions (joint containers) resync from their dependents. *)
  let repl_of peer =
    let pcfg = Bgp.Speaker.peer_cfg peer in
    match find_vrf t pcfg.Bgp.Speaker.vrf with
    | Some pv
      when Addr.equal pcfg.Bgp.Speaker.remote_addr pv.spec.peer_addr ->
        Some pv.repl
    | Some _ | None -> None
  in
  {
    Bgp.Speaker.on_rx_replicate =
      (fun peer msg ~size:_ ~inferred_ack ->
        match repl_of peer with
        | Some repl -> Replicator.on_rx_message repl msg ~inferred_ack
        | None -> ());
    on_tx_replicate =
      (fun peer _msg raw k ->
        match repl_of peer with
        | Some repl -> Replicator.on_tx_message repl ~raw ~release:k
        | None -> k ());
    on_rib_change =
      (fun ~vrf change ->
        match find_vrf t vrf with
        | Some pv -> Replicator.on_rib_change pv.repl ~vrf change
        | None -> ());
    on_updates_applied = (fun ~vrf:_ _ -> ());
    on_rx_applied =
      (fun peer _msg ->
        match repl_of peer with
        | Some repl -> Replicator.on_rx_applied repl
        | None -> ());
  }

(* The stall watchdog's view of the framer fragment (see Replicator). *)
let wire_tail_source t pv =
  Replicator.set_tail_source pv.repl (fun () ->
      if t.crashed then None
      else
        match pv.peer with
        | Some p -> (
            match Bgp.Speaker.peer_session p with
            | Some s -> (
                match Bgp.Session.conn s with
                | Some c ->
                    let tail = Bgp.Session.unparsed_tail s in
                    if String.length tail = 0 then None
                    else
                      let parsed = Bgp.Session.parsed_bytes s in
                      Some
                        ( parsed,
                          Tcp.irs c + 1 + parsed + String.length tail,
                          tail )
                | None -> None)
            | None -> None)
        | None -> None)

let start_trimmer t pv =
  if pv.trimmer = None then
    pv.trimmer <-
      Some
        (Engine.every (engine t) ~label:"app.trimmer" (Time.ms 500) (fun () ->
             if not t.crashed then
               match pv.peer with
               | Some p -> (
                   match Bgp.Speaker.peer_session p with
                   | Some s -> (
                       match Bgp.Session.conn s with
                       | Some c ->
                           Replicator.note_snd_una pv.repl ~iss:(Tcp.iss c)
                             ~snd_una:(Tcp.snd_una c)
                       | None -> ())
                   | None -> ())
               | None -> ()))

let write_meta t pv =
  match (t.client, pv.peer) with
  | Some client, Some p -> (
      match Bgp.Speaker.peer_session p with
      | Some s -> (
          match (Bgp.Session.conn s, Bgp.Session.negotiated s) with
          | Some c, Some neg ->
              let quad = Tcp.quad c in
              let meta =
                {
                  (* The epoch commits the stream key space: recovery
                     reads only the records this meta names. *)
                  Keys.epoch = Replicator.epoch pv.repl;
                  vrf = pv.spec.vrf;
                  local_addr = quad.Tcp.Quad.local_addr;
                  local_port = quad.Tcp.Quad.local_port;
                  peer_addr = quad.Tcp.Quad.remote_addr;
                  peer_port = quad.Tcp.Quad.remote_port;
                  local_asn = t.cfg.local_asn;
                  hold_time = neg.Bgp.Session.hold_time;
                  as4 = neg.Bgp.Session.as4_in_use;
                  iss = Tcp.iss c;
                  irs = Tcp.irs c;
                  mss = Tcp.mss c;
                  rcv_wnd = 400_000;
                  peer_open_raw =
                    Bgp.Msg.encode (Bgp.Msg.Open neg.Bgp.Session.peer_open);
                  peer_supports_gr = neg.Bgp.Session.peer_supports_gr;
                  peer_gr_restart_time = neg.Bgp.Session.peer_gr_restart_time;
                }
              in
              let cid =
                Keys.conn_id ~service:t.cfg.service_id ~vrf:pv.spec.vrf
              in
              persistent_set t client
                [ (Keys.meta_key cid, Keys.encode_meta meta) ]
          | _ -> ())
      | None -> ())
  | _ -> ()

(* Session lifecycle → replication state, shared between fresh bring-up
   and post-recovery resume. Up: key the replicator to the live
   connection's receive stream and persist its metadata. Down: drop the
   replicator back to pass-through so a successor connection's handshake
   is not held against the dead stream's sequence space. *)
let wire_peer_lifecycle t pv peer =
  Bgp.Speaker.on_peer_up peer (fun () ->
      pv.established <- true;
      (match Bgp.Speaker.peer_session peer with
      | Some s -> (
          match Bgp.Session.conn s with
          | Some c -> Replicator.session_established pv.repl ~irs:(Tcp.irs c)
          | None -> ())
      | None -> ());
      (* The held-ACK deadline derives from the *negotiated* hold time:
         the degraded switch must fire well inside the peer's hold timer
         (and the default quarter-fraction also sits inside one keepalive
         interval of slack). *)
      (if t.cfg.degrade_frac > 0. then
         match Bgp.Speaker.peer_session peer with
         | Some s -> (
             match Bgp.Session.negotiated s with
             | Some neg ->
                 Replicator.set_degrade_after pv.repl
                   (Some
                      (Time.of_sec_f
                         (t.cfg.degrade_frac
                         *. float_of_int neg.Bgp.Session.hold_time)))
             | None -> ())
         | None -> ());
      write_meta t pv;
      start_trimmer t pv;
      wire_tail_source t pv);
  Bgp.Speaker.on_peer_down peer (fun _ ->
      pv.established <- false;
      Replicator.session_down pv.repl)

let write_bfd_discs t pv =
  match (t.client, pv.bfd) with
  | Some client, Some session ->
      let cid = Keys.conn_id ~service:t.cfg.service_id ~vrf:pv.spec.vrf in
      persistent_set t client
        [
          ( Keys.bfd_key cid,
            Keys.encode_bfd ~my_disc:(Bfd.my_disc session)
              ~your_disc:(Bfd.your_disc session) );
        ]
  | _ -> ()

let start_bfd t pv ?resume () =
  if pv.spec.run_bfd then begin
    let ep = Bfd.endpoint (Orch.Container.node t.cont) in
    let session =
      Bfd.create_session ep ~local:pv.spec.vip ?resume ~vrf:pv.spec.vrf
        ~remote:pv.spec.peer_addr ()
    in
    pv.bfd <- Some session;
    Bfd.on_state_change session (fun ~old st ->
        match (old, st) with
        | (Bfd.Admin_down | Bfd.Down | Bfd.Init | Bfd.Up), Bfd.Up ->
            write_bfd_discs t pv;
            t.bfd_up_cb ~vrf:pv.spec.vrf session
        | Bfd.Up, Bfd.Down ->
            (* VRF link failure reported to the BGP process via IPC
               (§3.3.2); the BGP session's own timers take it from
               here. *)
            ()
        | Bfd.Up, (Bfd.Admin_down | Bfd.Init) -> ()
        | ( (Bfd.Admin_down | Bfd.Down | Bfd.Init),
            (Bfd.Admin_down | Bfd.Down | Bfd.Init) ) ->
            ());
    if resume <> None then begin
      write_bfd_discs t pv;
      t.bfd_up_cb ~vrf:pv.spec.vrf session
    end
  end

(* Poll until the resumed connection's send stream is fully acknowledged:
   the "TCP recovery" completion instant of Table 1. *)
let watch_tcp_sync ?(span = Telemetry.Span.none) t pv =
  let eng = engine t in
  let rec poll () =
    if not t.crashed then
      match pv.peer with
      | Some p when Bgp.Speaker.peer_state p = Bgp.Session.Established -> (
          match Bgp.Speaker.peer_session p with
          | Some s -> (
              match Bgp.Session.conn s with
              | Some c ->
                  if
                    Tcp.state c = Tcp.Established
                    && Tcp.snd_una c = Tcp.snd_nxt c
                    && Tcp.snd_nxt c > Tcp.iss c + 1
                  then begin
                    Telemetry.Span.finish eng span;
                    (* The stream is resynchronized; audit Adj-RIB-Out so
                       any UPDATE the failed primary generated but never
                       made durable (and therefore never sent) is
                       regenerated from the checkpointed table. *)
                    (match t.spk with
                    | Some spk -> Bgp.Speaker.resync_adj_out spk p
                    | None -> ());
                    t.tcp_synced_cb ~vrf:pv.spec.vrf
                  end
                  else
                    ignore
                      (Engine.schedule_after eng ~label:"app.sync_poll"
                         (Time.ms 50) poll)
              | None ->
                  ignore
                    (Engine.schedule_after eng ~label:"app.sync_poll"
                       (Time.ms 50) poll))
          | None -> ())
      | Some _ | None -> (* session gone: stop polling *) ()
  in
  poll ()

(* --- Degraded-store survival ---------------------------------------------------

   The store healed while a session ran in degraded pass-through: re-arm
   NSR without disturbing the peer. Wait for a quiescent send stream
   (nothing unacknowledged, so the fresh epoch needs no out| records),
   write the new epoch's meta + cursor baseline in one batch, flip the
   replicator back to protected mode, then audit Adj-RIB-Out and rewrite
   the routing-table checkpoint the degraded window left stale. Records
   of the pre-outage epoch are left behind as garbage; after a store
   crash (RAM wiped) there are none, and after a partition they stay
   bounded by the trimming that ran before the outage. *)
let rearm_from_degraded t pv =
  let eng = engine t in
  let service = t.cfg.service_id in
  let recheckpoint spk client =
    Store.Client.scan client ~prefix:(Keys.rib_prefix ~service) (fun res ->
        if (not t.crashed) && not (Replicator.degraded pv.repl) then begin
          let fresh =
            try
              let table = Bgp.Speaker.rib spk ~vrf:pv.spec.vrf in
              Bgp.Rib.fold_best table ~init:[] ~f:(fun acc pfx path ->
                  ( Keys.rib_key ~service ~vrf:pv.spec.vrf pfx,
                    Keys.encode_rib_entry path.Bgp.Rib.source pfx
                      path.Bgp.Rib.attrs )
                  :: acc)
            with Not_found -> []
          in
          let fresh_keys = List.map fst fresh in
          let stale =
            match res with
            | Ok pairs ->
                List.filter_map
                  (fun (key, _) ->
                    match Keys.vrf_prefix_of_rib_key ~service key with
                    | Some (v, _)
                      when String.equal v pv.spec.vrf
                           && not (List.mem key fresh_keys) ->
                        Some key
                    | _ -> None)
                  pairs
            | Error `Timeout -> []
          in
          if stale <> [] then Store.Client.del client stale (fun _ -> ());
          if fresh <> [] then persistent_set t client fresh
        end)
  in
  let rec poll () =
    if (not t.crashed) && Replicator.degraded pv.repl then
      match (t.client, t.spk, pv.peer) with
      | Some client, Some spk, Some p
        when Bgp.Speaker.peer_state p = Bgp.Session.Established -> (
          match Bgp.Speaker.peer_session p with
          | Some s -> (
              match (Bgp.Session.conn s, Bgp.Session.negotiated s) with
              | Some c, Some neg ->
                  if Tcp.snd_una c = Tcp.snd_nxt c then
                    rearm client spk p s c neg
                  else retry ()
              | _ -> ())
          | None -> ())
      | _ -> () (* session gone: session_down already cleared degraded *)
  and retry () =
    ignore (Engine.schedule_after eng ~label:"app.rearm_poll" (Time.ms 50) poll)
  and rearm client spk p s c neg =
    let epoch = Replicator.prepare_rearm pv.repl in
    let cid = Keys.conn_id ~service ~vrf:pv.spec.vrf in
    let ecid = Keys.epoch_cid cid epoch in
    let parsed = Bgp.Session.parsed_bytes s in
    let tail = Bgp.Session.unparsed_tail s in
    let snd_nxt0 = Tcp.snd_nxt c in
    let watermark = Tcp.irs c + 1 + parsed + String.length tail in
    let stream_offset = snd_nxt0 - (Tcp.iss c + 1) in
    let quad = Tcp.quad c in
    let meta =
      {
        Keys.epoch;
        vrf = pv.spec.vrf;
        local_addr = quad.Tcp.Quad.local_addr;
        local_port = quad.Tcp.Quad.local_port;
        peer_addr = quad.Tcp.Quad.remote_addr;
        peer_port = quad.Tcp.Quad.remote_port;
        local_asn = t.cfg.local_asn;
        hold_time = neg.Bgp.Session.hold_time;
        as4 = neg.Bgp.Session.as4_in_use;
        iss = Tcp.iss c;
        irs = Tcp.irs c;
        mss = Tcp.mss c;
        rcv_wnd = 400_000;
        peer_open_raw = Bgp.Msg.encode (Bgp.Msg.Open neg.Bgp.Session.peer_open);
        peer_supports_gr = neg.Bgp.Session.peer_supports_gr;
        peer_gr_restart_time = neg.Bgp.Session.peer_gr_restart_time;
      }
    in
    let part_written = String.length tail > 0 in
    let pairs =
      [
        (Keys.meta_key cid, Keys.encode_meta meta);
        (Keys.ack_key ecid, string_of_int watermark);
        (Keys.outtrim_key ecid, string_of_int stream_offset);
      ]
    in
    let pairs =
      if part_written then
        (Keys.part_key ecid, Keys.encode_part ~offset:parsed ~bytes:tail)
        :: pairs
      else pairs
    in
    let rec put () =
      if (not t.crashed) && Replicator.degraded pv.repl then
        Store.Client.set client ~timeout:(Time.sec 1) pairs (function
          | Ok () ->
              if (not t.crashed) && Replicator.degraded pv.repl then begin
                if
                  Tcp.snd_nxt c = snd_nxt0
                  && Tcp.snd_una c = snd_nxt0
                  && Bgp.Session.parsed_bytes s = parsed
                  && String.length (Bgp.Session.unparsed_tail s)
                     = String.length tail
                then begin
                  Replicator.complete_rearm pv.repl ~watermark ~stream_offset
                    ~part_written;
                  (* Any UPDATE generated while degraded was sent without
                     a checkpoint behind it: regenerate Adj-RIB-Out from
                     the table, then rewrite the rib| checkpoint. *)
                  Bgp.Speaker.resync_adj_out spk p;
                  recheckpoint spk client
                end
                else
                  (* The stream moved while the baseline was in flight:
                     the written cursors are already stale. Snapshot
                     again (under a fresh epoch). *)
                  retry ()
              end
          | Error `Timeout ->
              ignore
                (Engine.schedule_after eng ~label:"app.store_retry"
                   (Time.ms 200) put))
    in
    put ()
  in
  poll ()

(* --- Fresh bootstrap --------------------------------------------------------- *)

let bootstrap_fresh t spk stack =
  List.iter
    (fun pv ->
      let spec = pv.spec in
      let pc =
        {
          (Bgp.Speaker.default_peer_config ~vrf:spec.vrf
             ~remote_addr:spec.peer_addr ())
          with
          Bgp.Speaker.remote_asn = spec.peer_asn;
          local_addr = Some spec.vip;
          passive = spec.passive;
          hold_time = t.cfg.hold_time;
          policy_in = spec.policy_in;
          policy_out = spec.policy_out;
        }
      in
      let peer = Bgp.Speaker.add_peer spk pc in
      pv.peer <- Some peer;
      (match Tcp.output_chain stack with
      | Some chain ->
          Replicator.attach_output_chain pv.repl chain ~local:spec.vip
            ~remote:spec.peer_addr
      | None -> ());
      wire_peer_lifecycle t pv peer;
      (* Cluster-internal iBGP sessions (joint containers, §3.2.4). *)
      List.iter
        (fun (addr, passive) ->
          ignore
            (Bgp.Speaker.add_peer spk
               {
                 (Bgp.Speaker.default_peer_config ~vrf:spec.vrf
                    ~remote_addr:addr ())
                 with
                 Bgp.Speaker.remote_asn = Some t.cfg.local_asn;
                 local_addr = Some spec.vip;
                 passive;
                 hold_time = t.cfg.hold_time;
               }))
        spec.ibgp_peers;
      start_bfd t pv ())
    t.per_vrf;
  Bgp.Speaker.start spk

(* --- Recovery bootstrap -------------------------------------------------------- *)

(* Everything recovery needs from the store for one connection, parsed. *)
type recovered_state = {
  r_meta : Keys.meta;
  r_watermark : int;
  r_outtrim : int;
  r_bfd : (int * int) option;
  r_part : (int * string) option; (* replicated partial-frame tail *)
  r_out : (int * string) list; (* (offset, raw), sorted *)
  r_in : (int * string * string) list; (* (seq, key, raw), sorted *)
}

(* Stream-scoped records are read under the epoch the meta record names
   ([ecid]); anything a dead predecessor stream left behind lives under
   another epoch and is invisible here. *)
let parse_recovery ecid ~meta:r_meta ~bfd:r_bfd cursor_reads outs ins =
  match cursor_reads with
  | Error `Timeout -> Error "store unreachable"
  | Ok values ->
      let find key = Option.join (List.assoc_opt key values) in
      let r_watermark =
        match Option.bind (find (Keys.ack_key ecid)) int_of_string_opt with
        | Some a -> a
        | None -> r_meta.Keys.irs + 1
      in
      let r_outtrim =
        match
          Option.bind (find (Keys.outtrim_key ecid)) int_of_string_opt
        with
        | Some v -> v
        | None -> 0
      in
      let r_part =
        Option.bind (find (Keys.part_key ecid)) (fun v ->
            match Keys.decode_part v with
            | Ok p -> Some p
            | Error _ -> None)
      in
      let r_out =
        match outs with
        | Error `Timeout -> []
        | Ok pairs ->
            List.filter_map
              (fun (key, v) ->
                match (Keys.offset_of_out_key ecid key, Keys.unhex v) with
                | Some off, Ok raw -> Some (off, raw)
                | _ -> None)
              pairs
            |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      let r_in =
        match ins with
        | Error `Timeout -> []
        | Ok pairs ->
            List.filter_map
              (fun (key, v) ->
                match (Keys.seq_of_in_key ecid key, Keys.decode_in_record v) with
                | Some seq, Ok (_, raw) -> Some (seq, key, raw)
                | _ -> None)
              pairs
            |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
      in
      Ok { r_meta; r_watermark; r_outtrim; r_bfd; r_part; r_out; r_in }

let repair_of_recovered (r : recovered_state) =
  let meta = r.r_meta in
  let iss = meta.Keys.iss in
  let snd_una =
    match r.r_out with
    | (off, _) :: _ -> iss + 1 + off
    | [] -> iss + 1 + r.r_outtrim
  in
  let bytes_written =
    match List.rev r.r_out with
    | (off, raw) :: _ -> off + String.length raw
    | [] -> r.r_outtrim
  in
  ( {
      Tcp.Repair.quad =
        Tcp.Quad.v meta.Keys.local_addr meta.Keys.local_port meta.Keys.peer_addr
          meta.Keys.peer_port;
      mss = meta.Keys.mss;
      rcv_wnd = meta.Keys.rcv_wnd;
      iss;
      irs = meta.Keys.irs;
      snd_una;
      snd_nxt = iss + 1 + bytes_written;
      rcv_nxt = r.r_watermark;
      peer_wnd = 65535;
      unacked = List.map (fun (off, raw) -> (iss + 1 + off, raw)) r.r_out;
    },
    bytes_written )

let resume_from_recovered t spk stack client pv (r : recovered_state) =
  let spec = pv.spec in
  let meta = r.r_meta in
  let repair, bytes_written = repair_of_recovered r in
  match Bgp.Msg.decode meta.Keys.peer_open_raw with
  | Ok (Bgp.Msg.Open peer_open) ->
      let negotiated =
        {
          Bgp.Session.peer_open;
          hold_time = meta.Keys.hold_time;
          peer_supports_gr = meta.Keys.peer_supports_gr;
          peer_gr_restart_time = meta.Keys.peer_gr_restart_time;
          as4_in_use = meta.Keys.as4;
        }
      in
      let pc =
        {
          (Bgp.Speaker.default_peer_config ~vrf:spec.vrf
             ~remote_addr:spec.peer_addr ())
          with
          Bgp.Speaker.remote_asn = Some peer_open.Bgp.Msg.asn;
          local_addr = Some spec.vip;
          hold_time = t.cfg.hold_time;
          policy_in = spec.policy_in;
          policy_out = spec.policy_out;
        }
      in
      (* A valid replicated fragment is exactly the gap between the last
         complete message and the acknowledged watermark; anything else is
         stale and ignored. *)
      let framer_seed =
        match r.r_part with
        | Some (offset, bytes)
          when meta.Keys.irs + 1 + offset + String.length bytes
               = r.r_watermark ->
            bytes
        | Some _ | None -> ""
      in
      let peer =
        Bgp.Speaker.resume_peer spk pc ~repair ~negotiated ~framer_seed ()
      in
      pv.peer <- Some peer;
      pv.established <- true;
      (* The resumed peer needs the same lifecycle wiring as a fresh one:
         without it, a later session loss leaves the replicator armed
         against a dead stream and a re-establishment never re-keys it.
         Attached after [resume_peer], so the import itself (already
         Established) does not clobber [resume_at]'s watermark. *)
      wire_peer_lifecycle t pv peer;
      let in_seq =
        match List.rev r.r_in with (seq, _, _) :: _ -> seq + 1 | [] -> 0
      in
      Replicator.resume_at pv.repl ~epoch:meta.Keys.epoch ~watermark:r.r_watermark ~bytes_written
        ~in_seq ~outtrim:r.r_outtrim
        ~out_records:(List.map (fun (off, raw) -> (off, String.length raw)) r.r_out);
      (match Tcp.output_chain stack with
      | Some chain ->
          Replicator.attach_output_chain pv.repl chain ~local:spec.vip
            ~remote:spec.peer_addr
      | None -> ());
      (* Replay replicated-but-unapplied updates through the normal
         receive path, then trim them from the store. *)
      let replayed_keys =
        List.map
          (fun (_, key, raw) ->
            (match Bgp.Msg.decode raw with
            | Ok (Bgp.Msg.Update u) -> Bgp.Speaker.replay_update spk peer u
            | Ok _ | Error _ -> ());
            key)
          r.r_in
      in
      if replayed_keys <> [] then
        Store.Client.del client replayed_keys (fun _ -> ());
      start_trimmer t pv;
      wire_tail_source t pv;
      start_bfd t pv ?resume:r.r_bfd ();
      (* The kernel-side TCP_REPAIR restoration takes real time in the
         production system; after it, announce liveness and watch the
         peer re-synchronize. *)
      ignore
        (Engine.schedule_after (engine t) ~label:"app.tcp_restore"
           t.cfg.tcp_restore_cost (fun () ->
             if not t.crashed then begin
               (match Bgp.Speaker.peer_session peer with
               | Some s when Bgp.Session.state s = Bgp.Session.Established ->
                   Bgp.Session.send s Bgp.Msg.Keepalive
               | _ -> ());
               (* Seeded fault: flap one originated prefix after the
                  resume — withdraw now, re-announce shortly after, so
                  the end state is unchanged but the peer observed a
                  withdraw/re-announce pair. *)
               if !Monitor.Faults.flap_on_migration then begin
                 Monitor.Faults.flap_on_migration := false;
                 let vrf = spec.vrf in
                 let local_key = "local/" ^ vrf in
                 let table = Bgp.Speaker.rib spk ~vrf in
                 match
                   Bgp.Rib.fold_best table ~init:None ~f:(fun acc pfx path ->
                       match acc with
                       | Some _ -> acc
                       | None ->
                           if
                             String.equal path.Bgp.Rib.source.Bgp.Rib.key
                               local_key
                           then Some (pfx, path.Bgp.Rib.attrs)
                           else None)
                 with
                 | Some (pfx, attrs) ->
                     Bgp.Speaker.withdraw_origin spk ~vrf [ pfx ];
                     ignore
                       (Engine.schedule_after (engine t) ~label:"app.reoriginate"
                          (Time.ms 200) (fun () ->
                            Bgp.Speaker.originate spk ~vrf ~attrs [ pfx ]))
                 | None -> ()
               end;
               (* Seeded fault: reset the freshly-resumed session's
                  transport (RST) once the stack is steady. Unlike a Cease
                  NOTIFICATION, a transport reset is GR-eligible on both
                  ends — routes stay pinned as stale, the active side
                  auto-reconnects, and End-of-RIB sweeps the tables back
                  to identical — so the one surviving symptom is the reset
                  the remote AS was never supposed to see. *)
               if !Monitor.Faults.peer_reset then begin
                 Monitor.Faults.peer_reset := false;
                 ignore
                   (Engine.schedule_after (engine t) ~label:"app.peer_reset"
                      (Time.sec 2) (fun () ->
                        match Bgp.Speaker.peer_session peer with
                        | Some s
                          when Bgp.Session.state s = Bgp.Session.Established
                          -> (
                            match Bgp.Session.conn s with
                            | Some c -> Tcp.abort c
                            | None -> ())
                        | _ -> ()))
               end;
               let span = Telemetry.Span.start (engine t) "tcp_replay" in
               watch_tcp_sync ~span t pv
             end));
      Ok ()
  | Ok _ -> Error "metadata OPEN is not an OPEN"
  | Error _ -> Error "bad peer OPEN in metadata"

let recover_vrf t spk stack client pv k =
  let cid = Keys.conn_id ~service:t.cfg.service_id ~vrf:pv.spec.vrf in
  let eng = engine t in
  let t0 = Engine.now eng in
  let span = Telemetry.Span.start eng "replica_catchup" in
  if Telemetry.Gate.on () then
    Telemetry.Bus.emit eng
      (Telemetry.Event.Catchup_start
         { service = t.cfg.service_id; vrf = pv.spec.vrf });
  let finish_catchup result =
    (match result with
    | Ok (msgs, bytes) ->
        Telemetry.Registry.add m_catchup_msgs msgs;
        Telemetry.Registry.add m_catchup_bytes bytes;
        Telemetry.Registry.observe m_catchup_s
          (Time.to_sec_f (Time.diff (Engine.now eng) t0));
        if Telemetry.Gate.on () then
          Telemetry.Bus.emit eng
            (Telemetry.Event.Catchup_done
               { service = t.cfg.service_id; vrf = pv.spec.vrf; msgs; bytes })
    | Error _ -> ());
    Telemetry.Span.finish eng span
  in
  (* Two batched point-reads plus two scans: the state download of the
     migration path. The meta record is read first because it names the
     connection epoch, and the stream-scoped cursors (ack/outtrim/part)
     and record scans are only valid under that epoch's key space. *)
  let fail e =
    finish_catchup (Error e);
    k (Error e)
  in
  Store.Client.get client [ Keys.meta_key cid; Keys.bfd_key cid ]
    (fun identity_reads ->
      let find key reads = Option.join (List.assoc_opt key reads) in
      let meta =
        match identity_reads with
        | Error `Timeout -> Error "store unreachable"
        | Ok reads -> (
            match Option.map Keys.decode_meta (find (Keys.meta_key cid) reads) with
            | None -> Error "no session metadata"
            | Some (Error e) -> Error ("bad metadata: " ^ e)
            | Some (Ok m) -> Ok m)
      in
      match meta with
      | Error e -> fail e
      | Ok meta ->
          let bfd =
            match identity_reads with
            | Error `Timeout -> None
            | Ok reads ->
                Option.bind (find (Keys.bfd_key cid) reads) (fun v ->
                    match Keys.decode_bfd v with
                    | Ok discs -> Some discs
                    | Error _ -> None)
          in
          let ecid = Keys.epoch_cid cid meta.Keys.epoch in
          Store.Client.get client
            [ Keys.ack_key ecid; Keys.outtrim_key ecid; Keys.part_key ecid ]
            (fun cursor_reads ->
              Store.Client.scan client ~prefix:(Keys.out_prefix ecid) (fun outs ->
                  Store.Client.scan client ~prefix:(Keys.in_prefix ecid) (fun ins ->
              match parse_recovery ecid ~meta ~bfd cursor_reads outs ins with
              | Error e -> fail e
              | Ok r ->
                  let msgs = List.length r.r_in in
                  let bytes =
                    List.fold_left
                      (fun acc (_, _, raw) -> acc + String.length raw)
                      0 r.r_in
                    + List.fold_left
                        (fun acc (_, raw) -> acc + String.length raw)
                        0 r.r_out
                  in
                  let result = resume_from_recovered t spk stack client pv r in
                  finish_catchup (Ok (msgs, bytes));
                  k result))))


let bootstrap_recover t spk stack client =
  (* Until every connection is imported, the stack knows none of the
     quads: a peer retransmission arriving early would be answered with a
     RST and destroy the very session we are recovering. Prime the OUTPUT
     chain with an RST guard first (the kernel-free analogue of entering
     TCP_REPAIR mode before thawing the socket). *)
  let rst_guard =
    match Tcp.output_chain stack with
    | Some chain ->
        Some
          ( chain,
            Netfilter.add_rule chain (fun pkt ->
                match pkt.Packet.payload with
                | Tcp.Segment.Tcp seg when seg.Tcp.Segment.flags.Tcp.Segment.rst
                  ->
                    Netfilter.Drop
                | _ -> Netfilter.Accept) )
    | None -> None
  in
  let drop_rst_guard () =
    match rst_guard with
    | Some (chain, rule) -> Netfilter.remove_rule chain rule
    | None -> ()
  in
  (* Restore the routing-table checkpoint first (quiet installs), then
     resume every VRF's session. *)
  Store.Client.scan client ~prefix:(Keys.rib_prefix ~service:t.cfg.service_id)
    (fun rib_entries ->
      (match rib_entries with
      (* Seeded fault: ignore the checkpoint — the promoted replica
         starts from an empty table and never converges to the
         master's. *)
      | Ok _ when !Monitor.Faults.skip_rib_restore -> ()
      | Ok pairs ->
          List.iter
            (fun (key, v) ->
              match
                ( Keys.vrf_prefix_of_rib_key ~service:t.cfg.service_id key,
                  Keys.decode_rib_entry v )
              with
              | Some (vrf, _), Ok (src, prefix, attrs) ->
                  Bgp.Speaker.restore_route spk ~vrf src prefix attrs
              | _ -> ())
            pairs
      | Error `Timeout -> ());
      let remaining = ref (List.length t.per_vrf) in
      let one_done _result =
        decr remaining;
        if !remaining = 0 then begin
          drop_rst_guard ();
          t.recovered_cb ()
        end
      in
      if t.per_vrf = [] then begin
        drop_rst_guard ();
        t.recovered_cb ()
      end
      else
        List.iter (fun pv -> recover_vrf t spk stack client pv one_done) t.per_vrf)

(* --- Entry point ---------------------------------------------------------------- *)

let bootstrap t () =
  let node = Orch.Container.node t.cont in
  t.crashed <- false;
  List.iter
    (fun spec -> Orch.Container.assign_service_addr t.cont spec.vip)
    t.cfg.vrfs;
  let stack = Tcp.create_stack node in
  let chain = Netfilter.create ~eng:(Node.engine node) () in
  Tcp.set_output_chain stack (Some chain);
  let client =
    match (t.cfg.store_replica, t.cfg.store_retry) with
    | None, false -> Store.Client.create node ~server:t.cfg.store_addr
    | replica, _ ->
        (* Resilient mode: idempotent, retried, failing over to the
           replica once the primary's budget is exhausted. *)
        Store.Client.create ?replica ~retry:(Rpc.retry_policy ()) node
          ~server:t.cfg.store_addr
  in
  t.stack <- Some stack;
  t.client <- Some client;
  let eng = Node.engine node in
  t.per_vrf <-
    List.map
      (fun spec ->
        {
          spec;
          repl =
            Replicator.create ~replicate:t.cfg.replicate
              ~ack_hold:t.cfg.ack_hold ~engine:eng ~client
              ~conn_id:(Keys.conn_id ~service:t.cfg.service_id ~vrf:spec.vrf)
              ~service:t.cfg.service_id ();
          peer = None;
          bfd = None;
          trimmer = None;
          established = false;
        })
      t.cfg.vrfs;
  if t.cfg.degrade_frac > 0. then
    List.iter
      (fun pv ->
        Replicator.set_on_store_healed pv.repl (fun () ->
            rearm_from_degraded t pv))
      t.per_vrf;
  let router_id =
    match t.cfg.vrfs with
    | spec :: _ -> spec.vip
    | [] -> invalid_arg "Tensor app: no VRFs configured"
  in
  let spk =
    Bgp.Speaker.create ~profile:t.cfg.profile ~hooks:(hooks_for t) ~stack
      ~local_asn:t.cfg.local_asn ~router_id ()
  in
  t.spk <- Some spk;
  Orch.Container.set_resources t.cont
    ~mem_mb:(220.0 +. (30.0 *. float_of_int (List.length t.cfg.vrfs)))
    ~cpu_pct:(0.04 +. (0.015 *. float_of_int (List.length t.cfg.vrfs)));
  match t.boot_mode with
  | Fresh -> bootstrap_fresh t spk stack
  | Recover -> bootstrap_recover t spk stack client

let install cont ?(mode = Fresh) cfg =
  let t =
    {
      cfg;
      cont;
      boot_mode = mode;
      spk = None;
      stack = None;
      client = None;
      per_vrf = [];
      crashed = false;
      bfd_up_cb = (fun ~vrf:_ _ -> ());
      recovered_cb = (fun () -> ());
      tcp_synced_cb = (fun ~vrf:_ -> ());
    }
  in
  Orch.Container.on_running cont (fun _ -> bootstrap t ());
  (* Preheated standby containers are already Running: bootstrap now
     (from a fresh event, never reentrantly). *)
  if Orch.Container.state cont = Orch.Container.Running then
    ignore
      (Engine.schedule_after
         (Node.engine (Orch.Container.node cont))
         ~label:"app.bootstrap" 0 (bootstrap t));
  t

let freeze_for_migration t k =
  if t.crashed then k ()
  else begin
    t.crashed <- true;
    (match t.stack with Some stack -> Tcp.freeze_stack stack | None -> ());
    let remaining = ref (List.length t.per_vrf) in
    let one () =
      decr remaining;
      if !remaining = 0 then k ()
    in
    if t.per_vrf = [] then k ()
    else
      List.iter
        (fun pv ->
          Replicator.drain pv.repl (fun () ->
              Replicator.stop pv.repl;
              one ()))
        t.per_vrf
  end

let halt t =
  if not t.crashed then begin
    t.crashed <- true;
    (* The fence (TKE kill) takes the process with it: the stack freezes
       and replication stops, but nothing is reported — a dead process
       cannot speak. Without this, the fenced instance's keepalive timer
       keeps attempting store writes through its dead node; the blocked
       control lane then ages past the degrade deadline and a zombie
       declares degraded pass-through under the same conn id its live
       successor is using. *)
    (match t.stack with Some stack -> Tcp.freeze_stack stack | None -> ());
    List.iter (fun pv -> Replicator.stop pv.repl) t.per_vrf
  end

let crash_bgp t =
  if not t.crashed then begin
    t.crashed <- true;
    (* The process dies: the TCP stack freezes mid-flight (no FIN/RST
       escapes: the NFQUEUE has no reader any more) and replication
       stops. BFD is a separate process and keeps running. *)
    (match t.stack with Some stack -> Tcp.freeze_stack stack | None -> ());
    List.iter (fun pv -> Replicator.stop pv.repl) t.per_vrf;
    (* The in-container monitor notices within ~10 ms and reports. *)
    match t.cfg.controller_addr with
    | Some ctrl ->
        let node = Orch.Container.node t.cont in
        ignore
          (Engine.schedule_after (Node.engine node) ~label:"app.fail_report"
             (Time.ms 10) (fun () ->
               Rpc.call (Rpc.endpoint node) ~dst:ctrl ~service:"report"
                 (Orch.Controller.Report_app_failure t.cfg.service_id)
                 (fun _ -> ())))
    | None -> ()
  end
