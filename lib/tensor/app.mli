(** The TENSOR application running inside one container.

    One container hosts one BGP process and one BFD process (§3.2.1);
    each VRF of the pair corresponds to one peering AS. The app wires
    together, on the container's node: a TCP stack with a Netfilter
    OUTPUT chain, a {!Bgp.Speaker} with TENSOR's profile and replication
    hooks, one {!Replicator} per VRF/session, one {!Bfd} session per VRF,
    a store client, and the in-container application monitor that reports
    BGP/BFD process failures to the controller (E1).

    Two bootstrap modes exist:
    - [Fresh]: ordinary session establishment; on establishment the app
      writes the session metadata record and the BFD discriminators to
      the store.
    - [Recover]: the NSR path. State is downloaded from the store (meta,
      watermark, outbound records, unapplied messages, routing-table
      checkpoint, BFD discriminators); the TCP connection and BGP session
      are resumed without any wire handshake; unapplied updates are
      replayed; BFD resumes Up with the replicated discriminators. *)

type vrf_spec = {
  vrf : string;
  vip : Netsim.Addr.t;  (** The service address that migrates. *)
  peer_addr : Netsim.Addr.t;
  peer_asn : int option;
  passive : bool;
  run_bfd : bool;
  policy_in : Bgp.Policy.t;
  policy_out : Bgp.Policy.t;
  ibgp_peers : (Netsim.Addr.t * bool) list;
      (** Additional iBGP sessions in this VRF — [(address, passive)].
          This is how a {e joint BGP container} (§3.2.4) synchronizes
          global routing information between otherwise-isolated client
          containers. iBGP sessions are cluster-internal and are not
          NSR-replicated: a joint container resynchronizes from its
          dependent containers after any restart. *)
}

val vrf_spec :
  vrf:string ->
  vip:Netsim.Addr.t ->
  peer_addr:Netsim.Addr.t ->
  ?peer_asn:int ->
  ?passive:bool ->
  ?run_bfd:bool ->
  ?ibgp_peers:(Netsim.Addr.t * bool) list ->
  unit ->
  vrf_spec
(** Defaults: active opener, BFD on, empty policies, no iBGP peers. *)

type config = {
  service_id : string;
  store_addr : Netsim.Addr.t;
  store_replica : Netsim.Addr.t option;
      (** Failover target for the store client (default none). *)
  store_retry : bool;
      (** Use a resilient store client (idempotent retried ops) even
          without a replica. Either this or [store_replica] switches the
          client out of the plain one-attempt mode. *)
  controller_addr : Netsim.Addr.t option;
  local_asn : int;
  hold_time : int;
  degrade_frac : float;
      (** Degraded-store survival: fraction of the {e negotiated} hold
          time after which unachievable durability (a held ACK or a
          blocked control-lane write aging past the deadline) flips the
          session's replicator into degraded pass-through instead of
          letting the peer's hold timer fire. [0.] (the default)
          disables the mechanism — the replicator then blocks
          indefinitely, the pre-existing behaviour. Once the store heals
          the app re-arms NSR under a fresh epoch, audits Adj-RIB-Out
          via the resync path and rewrites the rib| checkpoint. *)
  vrfs : vrf_spec list;
  profile : Bgp.Speaker.profile;
  replicate : bool;  (** Ablation: disable replication entirely. *)
  ack_hold : bool;  (** Ablation: replicate but never delay ACKs. *)
  tcp_restore_cost : Sim.Time.span;
      (** Modelled cost of loading the replicated TCP state back into a
          kernel socket (TCP_REPAIR writes, NFQUEUE re-priming) plus the
          verification probe — our userspace stack resumes instantly, so
          this constant carries the ~1 s "TCP recovery" phase Table 1
          reports for the production system. *)
}

val config :
  service_id:string ->
  store_addr:Netsim.Addr.t ->
  ?store_replica:Netsim.Addr.t ->
  ?store_retry:bool ->
  ?controller_addr:Netsim.Addr.t ->
  local_asn:int ->
  ?hold_time:int ->
  ?degrade_frac:float ->
  ?profile:Bgp.Speaker.profile ->
  ?replicate:bool ->
  ?ack_hold:bool ->
  ?tcp_restore_cost:Sim.Time.span ->
  vrf_spec list ->
  config
(** Raises [Invalid_argument] unless [degrade_frac] is in [\[0, 1)]. *)

type mode = Fresh | Recover

type t

val install : Orch.Container.t -> ?mode:mode -> config -> t
(** Registers the bootstrap on the container's on_running hook (so it
    runs at every (re)boot). *)

val container : t -> Orch.Container.t
val speaker : t -> Bgp.Speaker.t option
(** Available once the container runs. *)

val replicator : t -> vrf:string -> Replicator.t option
val bfd_session : t -> vrf:string -> Bfd.session option
val session_established : t -> vrf:string -> bool

val on_bfd_up : t -> (vrf:string -> Bfd.session -> unit) -> unit
(** Fired when a VRF's BFD reaches Up (fresh mode) or resumes (recovery
    mode) — the deployment layer registers the agent relay here. *)

val on_recovered : t -> (unit -> unit) -> unit
(** Recovery mode: all VRFs have been resumed (sessions live, RIB
    restored, replay done). *)

val on_tcp_synced : t -> (vrf:string -> unit) -> unit
(** Post-recovery: the resumed connection's send stream is fully
    acknowledged by the peer — the "TCP recovery" instant of Table 1. *)

val freeze_for_migration : t -> (unit -> unit) -> unit
(** Planned maintenance (§4.4 "transparent system updates at any time"):
    freeze the TCP stack (the peer's in-flight data goes unacknowledged —
    NSR-safe, it will retransmit to the successor), flush every pending
    replication write, then invoke the callback. After it fires, the
    store holds a complete, quiescent snapshot and a backup can resume
    the sessions with nothing in doubt. *)

val crash_bgp : t -> unit
(** Application-failure injection (E1): the BGP process dies. Sessions
    stop silently (no NOTIFICATION — a crash sends nothing), and the
    in-container monitor reports to the controller. *)

val halt : t -> unit
(** The fence's view of {!crash_bgp}: the process is killed with the
    container, so the stack freezes and replication stops, but nothing
    is reported — a dead process cannot speak. Idempotent, and a no-op
    after {!crash_bgp} or {!freeze_for_migration}. Held ACKs flush as
    [Ack_dropped] so the end-of-run queue balance still closes. *)

val routes : t -> vrf:string -> int
(** Loc-RIB size of a VRF (0 before boot). *)
