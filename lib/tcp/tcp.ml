open Sim
open Netsim

module Segment = Segment
module Congestion = Congestion
module Stream_buf = Stream_buf
module Quad = Quad
module Repair = Repair

let m_seg_out = Telemetry.Registry.counter "tcp.segments_out"
let m_seg_in = Telemetry.Registry.counter "tcp.segments_in"
let m_retx = Telemetry.Registry.counter "tcp.retransmits"
let m_rto = Telemetry.Registry.counter "tcp.rto_fires"
let m_repair_export = Telemetry.Registry.counter "tcp.repair_exports"
let m_repair_import = Telemetry.Registry.counter "tcp.repair_imports"
let m_rtt = Telemetry.Registry.histogram "tcp.rtt_s"

type state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closed

type close_reason = Closed_normally | Reset | Timed_out

let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Syn_sent -> "SYN_SENT"
    | Syn_received -> "SYN_RECEIVED"
    | Established -> "ESTABLISHED"
    | Fin_wait_1 -> "FIN_WAIT_1"
    | Fin_wait_2 -> "FIN_WAIT_2"
    | Close_wait -> "CLOSE_WAIT"
    | Last_ack -> "LAST_ACK"
    | Closed -> "CLOSED")

let pp_close_reason fmt r =
  Format.pp_print_string fmt
    (match r with
    | Closed_normally -> "closed"
    | Reset -> "reset"
    | Timed_out -> "timed out")

type stack = {
  node : Node.t;
  eng : Engine.t;
  conns : (Quad.t, conn) Hashtbl.t;
  listeners : (int, conn -> unit) Hashtbl.t;
  mutable chain : Netfilter.t option;
  proc_cost : Time.span;
  proc_cost_per_kb : Time.span;
  hook_cost : Time.span;
  min_rto : Time.span;
  max_rto : Time.span;
  max_retries : int;
  mutable busy_until : Time.t;
  mutable next_port : int;
  mutable frozen : bool;
  rng : Rng.t;
}

and conn = {
  stack : stack;
  cquad : Quad.t;
  cmss : int;
  rcv_wnd : int;
  mutable st : state;
  (* Send side. *)
  mutable iss_v : int;
  mutable snd_una_v : int;
  mutable snd_nxt_v : int;
  sndbuf : Stream_buf.t;
  cc : Congestion.t;
  mutable peer_wnd : int;
  mutable fin_pending : bool;
  mutable fin_seq : int option;
  (* Receive side. *)
  mutable irs_v : int;
  mutable rcv_nxt_v : int;
  mutable ooo : (int * string) list; (* sorted by seq *)
  mutable delivered : int;
  (* RTT estimation (RFC 6298, simplified). *)
  mutable srtt_v : float;
  mutable rttvar : float;
  mutable rto : Time.span; (* base value, from RTT estimation *)
  mutable backoff : int; (* exponential-backoff exponent, reset on new ACK *)
  mutable rto_recover : int option;
      (* go-back-N recovery after an RTO: retransmit ACK-clocked up to
         this point (the snd_nxt at timeout) instead of one MSS per
         timer firing *)
  mutable rtt_sampling : bool;
  mutable rtt_seq : int;
  mutable rtt_sent_at : Time.t;
  mutable rto_handle : Engine.handle option;
  mutable retries : int;
  (* Callbacks. *)
  mutable established_cb : unit -> unit;
  mutable data_cb : string -> unit;
  mutable close_cb : close_reason -> unit;
  mutable remote_fin_cb : unit -> unit;
  (* Stats. *)
  mutable acked : int;
  mutable rtx : int;
  mutable n_in : int;
  mutable n_out : int;
}

let stack_node s = s.node
let stack_engine s = s.eng
let set_output_chain s c = s.chain <- c
let output_chain s = s.chain

(* Serialize all segment handling through the stack's modelled CPU. *)
let occupy ?(bytes = 0) stack =
  let now = Engine.now stack.eng in
  let start = if stack.busy_until > now then stack.busy_until else now in
  let cost = stack.proc_cost + (bytes * stack.proc_cost_per_kb / 1024) in
  let finish = Time.add start cost in
  stack.busy_until <- finish;
  finish

let emit_packet stack pkt =
  match stack.chain with
  | None -> Node.send stack.node pkt
  | Some chain ->
      Netfilter.traverse chain pkt ~emit:(fun p -> Node.send stack.node p)

let raw_send stack ~src ~dst (seg : Segment.t) =
  if not stack.frozen then begin
    let finish = occupy ~bytes:(String.length seg.Segment.payload) stack in
    (* Interception overhead: every egress segment traverses the OUTPUT
       chain when one is installed. *)
    let finish =
      if stack.chain = None then finish
      else begin
        stack.busy_until <- Time.add stack.busy_until stack.hook_cost;
        Time.add finish stack.hook_cost
      end
    in
    ignore
      (Engine.schedule_at stack.eng ~label:"tcp.tx" finish (fun () ->
           if not stack.frozen then begin
             let pkt =
               Packet.make ~src ~dst ~size:(Segment.wire_size seg)
                 (Segment.Tcp seg)
             in
             emit_packet stack pkt
           end))
  end

let send_seg c ?(flags = Segment.flag_ack) ?seq ?(payload = "") () =
  let seq = match seq with Some s -> s | None -> c.snd_nxt_v in
  let seg =
    {
      Segment.src_port = c.cquad.local_port;
      dst_port = c.cquad.remote_port;
      seq;
      ack = (if flags.Segment.ack then c.rcv_nxt_v else 0);
      window = c.rcv_wnd;
      payload;
      flags;
    }
  in
  c.n_out <- c.n_out + 1;
  Telemetry.Registry.incr m_seg_out;
  raw_send c.stack ~src:c.cquad.local_addr ~dst:c.cquad.remote_addr seg

let send_ack c = send_seg c ()

(* --- RTO management --------------------------------------------------- *)

let cancel_rto c =
  match c.rto_handle with
  | Some h ->
      Engine.cancel h;
      c.rto_handle <- None
  | None -> ()

let update_rtt c sample_s =
  Telemetry.Registry.observe m_rtt sample_s;
  (* lint: allow d3 — 0.0 is the exact "no RTT sample yet" sentinel assigned at creation, never computed *)
  if c.srtt_v = 0.0 then begin
    c.srtt_v <- sample_s;
    c.rttvar <- sample_s /. 2.0
  end
  else begin
    c.rttvar <- (0.75 *. c.rttvar) +. (0.25 *. Float.abs (c.srtt_v -. sample_s));
    c.srtt_v <- (0.875 *. c.srtt_v) +. (0.125 *. sample_s)
  end;
  let rto = Time.of_sec_f (c.srtt_v +. (4.0 *. c.rttvar)) in
  c.rto <- max c.stack.min_rto (min c.stack.max_rto rto)

let teardown c reason =
  if c.st <> Closed then begin
    c.st <- Closed;
    cancel_rto c;
    Hashtbl.remove c.stack.conns c.cquad;
    c.close_cb reason
  end

(* Retransmit the lowest outstanding segment (data or FIN). *)
let retransmit_head c =
  if c.snd_una_v < c.snd_nxt_v then begin
    c.rtt_sampling <- false (* Karn's rule *);
    match c.fin_seq with
    | Some fs when c.snd_una_v = fs ->
        c.rtx <- c.rtx + 1;
        Telemetry.Registry.incr m_retx;
        if Telemetry.Gate.on () then
          Telemetry.Bus.emit c.stack.eng
            (Telemetry.Event.Seg_retransmit
               { conn = Quad.to_string c.cquad; seq = fs; len = 0 });
        send_seg c ~flags:Segment.flag_fin_ack ~seq:fs ()
    | _ ->
        let data_end = Stream_buf.end_seq c.sndbuf in
        let len = min c.cmss (data_end - c.snd_una_v) in
        if len > 0 then begin
          c.rtx <- c.rtx + 1;
          Telemetry.Registry.incr m_retx;
          if Telemetry.Gate.on () then
            Telemetry.Bus.emit c.stack.eng
              (Telemetry.Event.Seg_retransmit
                 { conn = Quad.to_string c.cquad; seq = c.snd_una_v; len });
          let payload = Stream_buf.read c.sndbuf ~seq:c.snd_una_v ~len in
          send_seg c ~seq:c.snd_una_v ~payload ()
        end
  end

let effective_rto c =
  min c.stack.max_rto (c.rto * (1 lsl min 8 c.backoff))

let rec arm_rto c =
  cancel_rto c;
  c.rto_handle <-
    Some
      (Engine.schedule_after c.stack.eng ~label:"tcp.rto" (effective_rto c)
         (fun () ->
           c.rto_handle <- None;
           handle_rto c))

and handle_rto c =
  if c.st <> Closed then begin
    Telemetry.Registry.incr m_rto;
    if Telemetry.Gate.on () then
      Telemetry.Bus.emit c.stack.eng
        (Telemetry.Event.Rto_fired
           {
             conn = Quad.to_string c.cquad;
             backoff = c.backoff;
             rto_s = Time.to_sec_f (effective_rto c);
           })
  end;
  match c.st with
  | Closed -> ()
  | Syn_sent ->
      c.retries <- c.retries + 1;
      if c.retries > c.stack.max_retries then teardown c Timed_out
      else begin
        c.backoff <- c.backoff + 1;
        send_seg c ~flags:Segment.flag_syn ~seq:c.iss_v ();
        arm_rto c
      end
  | Syn_received ->
      c.retries <- c.retries + 1;
      if c.retries > c.stack.max_retries then teardown c Timed_out
      else begin
        c.backoff <- c.backoff + 1;
        send_seg c ~flags:Segment.flag_synack ~seq:c.iss_v ();
        arm_rto c
      end
  | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Last_ack ->
      if c.snd_una_v < c.snd_nxt_v then begin
        c.retries <- c.retries + 1;
        if c.retries > c.stack.max_retries then teardown c Timed_out
        else begin
          Congestion.on_rto c.cc;
          c.backoff <- c.backoff + 1;
          c.rto_recover <- Some c.snd_nxt_v;
          retransmit_head c;
          arm_rto c
        end
      end

(* ACK-clocked go-back-N: after an RTO, each new ACK lets us retransmit
   the next congestion-window's worth of the lost tail rather than one
   MSS per timer firing. *)
and retransmit_burst c ~upto =
  let wnd = min (Congestion.window c.cc) c.peer_wnd in
  let data_end = Stream_buf.end_seq c.sndbuf in
  let stop = min upto (min data_end (c.snd_una_v + wnd)) in
  let seq = ref c.snd_una_v in
  while !seq < stop do
    let len = min c.cmss (stop - !seq) in
    let payload = Stream_buf.read c.sndbuf ~seq:!seq ~len in
    c.rtx <- c.rtx + 1;
    Telemetry.Registry.incr m_retx;
    send_seg c ~seq:!seq ~payload ();
    seq := !seq + len
  done

(* --- Transmission ------------------------------------------------------ *)

let can_send_data c =
  match c.st with
  | Established | Close_wait -> true
  | Syn_sent | Syn_received | Fin_wait_1 | Fin_wait_2 | Last_ack | Closed ->
      false

let rec try_send c =
  if can_send_data c then begin
    let wnd = min (Congestion.window c.cc) c.peer_wnd in
    let data_end = Stream_buf.end_seq c.sndbuf in
    let continue = ref true in
    while !continue do
      let flight = c.snd_nxt_v - c.snd_una_v in
      let room = wnd - flight in
      if c.snd_nxt_v < data_end && room > 0 then begin
        let len = min (min c.cmss (data_end - c.snd_nxt_v)) room in
        let payload = Stream_buf.read c.sndbuf ~seq:c.snd_nxt_v ~len in
        send_seg c ~seq:c.snd_nxt_v ~payload ();
        if not c.rtt_sampling then begin
          c.rtt_sampling <- true;
          c.rtt_seq <- c.snd_nxt_v + len;
          c.rtt_sent_at <- Engine.now c.stack.eng
        end;
        c.snd_nxt_v <- c.snd_nxt_v + len;
        if c.rto_handle = None then arm_rto c
      end
      else continue := false
    done;
    maybe_send_fin c
  end

and maybe_send_fin c =
  if c.fin_pending && c.snd_nxt_v = Stream_buf.end_seq c.sndbuf then begin
    c.fin_pending <- false;
    c.fin_seq <- Some c.snd_nxt_v;
    send_seg c ~flags:Segment.flag_fin_ack ~seq:c.snd_nxt_v ();
    c.snd_nxt_v <- c.snd_nxt_v + 1;
    (match c.st with
    | Established -> c.st <- Fin_wait_1
    | Close_wait -> c.st <- Last_ack
    | Syn_sent | Syn_received | Fin_wait_1 | Fin_wait_2 | Last_ack | Closed ->
        ());
    if c.rto_handle = None then arm_rto c
  end

(* --- Receive path ------------------------------------------------------ *)

let deliver c data =
  c.delivered <- c.delivered + String.length data;
  c.data_cb data

let rec drain_ooo c =
  (* In-order traffic keeps [ooo] empty; skip the filter then so the
     per-segment rx path doesn't allocate its closure for nothing. *)
  (match c.ooo with
  | [] -> ()
  | _ ->
      c.ooo <-
        List.filter (fun (s, d) -> s + String.length d > c.rcv_nxt_v) c.ooo);
  match c.ooo with
  | (s, d) :: rest when s <= c.rcv_nxt_v ->
      let off = c.rcv_nxt_v - s in
      let fresh = String.sub d off (String.length d - off) in
      c.ooo <- rest;
      c.rcv_nxt_v <- c.rcv_nxt_v + String.length fresh;
      deliver c fresh;
      drain_ooo c
  | _ -> ()

let insert_ooo c (seq, data) =
  let len = String.length data in
  let covered =
    List.exists
      (fun (s, d) -> s <= seq && s + String.length d >= seq + len)
      c.ooo
  in
  if not covered then
    c.ooo <-
      List.sort (fun (a, _) (b, _) -> Int.compare a b) ((seq, data) :: c.ooo)

let process_data c (seg : Segment.t) =
  let len = String.length seg.payload in
  if len > 0 then
    if seg.seq + len <= c.rcv_nxt_v then send_ack c (* stale duplicate *)
    else if seg.seq >= c.rcv_nxt_v + c.rcv_wnd then () (* beyond our window *)
    else begin
      (* Bind the trimmed start and payload separately: a [let seq, data =
         ...] pair here allocated a tuple on every in-order segment. *)
      let off = if seg.seq < c.rcv_nxt_v then c.rcv_nxt_v - seg.seq else 0 in
      let seq = seg.seq + off in
      let data =
        if off = 0 then seg.payload else String.sub seg.payload off (len - off)
      in
      if seq = c.rcv_nxt_v then begin
        c.rcv_nxt_v <- c.rcv_nxt_v + String.length data;
        deliver c data;
        drain_ooo c
      end
      else insert_ooo c (seq, data);
      send_ack c
    end

let fin_acked c =
  match c.st with
  | Fin_wait_1 -> c.st <- Fin_wait_2
  | Last_ack -> teardown c Closed_normally
  | Syn_sent | Syn_received | Established | Fin_wait_2 | Close_wait | Closed ->
      ()

let process_ack c (seg : Segment.t) =
  if seg.flags.ack then begin
    c.peer_wnd <- seg.window;
    let reaction =
      Congestion.on_ack c.cc ~snd_una:c.snd_una_v ~snd_nxt:c.snd_nxt_v
        ~ack:seg.ack
    in
    if seg.ack > c.snd_una_v && seg.ack <= c.snd_nxt_v then begin
      c.acked <- c.acked + (seg.ack - c.snd_una_v);
      c.snd_una_v <- seg.ack;
      Stream_buf.drop_until c.sndbuf
        (min seg.ack (Stream_buf.end_seq c.sndbuf));
      c.retries <- 0;
      c.backoff <- 0;
      (match c.rto_recover with
      | Some r when seg.ack >= r -> c.rto_recover <- None
      | Some r -> retransmit_burst c ~upto:r
      | None -> ());
      if c.rtt_sampling && seg.ack >= c.rtt_seq then begin
        c.rtt_sampling <- false;
        update_rtt c
          (Time.to_sec_f (Time.diff (Engine.now c.stack.eng) c.rtt_sent_at))
      end;
      (match c.fin_seq with
      | Some fs when seg.ack > fs -> fin_acked c
      | _ -> ());
      if c.snd_una_v >= c.snd_nxt_v then cancel_rto c else arm_rto c
    end;
    (match reaction with
    | Congestion.Fast_retransmit -> retransmit_head c
    | Congestion.Ack_advanced | Congestion.Ignore -> ());
    try_send c
  end

let process_fin c (seg : Segment.t) =
  if seg.flags.fin then begin
    let fin_pos = seg.seq + String.length seg.payload in
    if fin_pos = c.rcv_nxt_v then begin
      c.rcv_nxt_v <- c.rcv_nxt_v + 1;
      send_ack c;
      (match c.st with
      | Established ->
          c.st <- Close_wait;
          c.remote_fin_cb ()
      | Fin_wait_1 ->
          (* Simultaneous close: our FIN is unacked; peer's FIN arrived. *)
          c.st <- Last_ack
      | Fin_wait_2 -> teardown c Closed_normally
      | Syn_sent | Syn_received | Close_wait | Last_ack | Closed -> ())
    end
    else if fin_pos < c.rcv_nxt_v then send_ack c (* duplicate FIN *)
  end

let established_process c seg =
  process_ack c seg;
  if c.st <> Closed then begin
    process_data c seg;
    process_fin c seg
  end

let conn_rx c (seg : Segment.t) =
  c.n_in <- c.n_in + 1;
  Telemetry.Registry.incr m_seg_in;
  if seg.flags.rst then teardown c Reset
  else
    match c.st with
    | Syn_sent ->
        if seg.flags.syn && seg.flags.ack && seg.ack = c.iss_v + 1 then begin
          c.irs_v <- seg.seq;
          c.rcv_nxt_v <- seg.seq + 1;
          c.snd_una_v <- seg.ack;
          c.peer_wnd <- seg.window;
          c.st <- Established;
          c.retries <- 0;
          cancel_rto c;
          update_rtt c
            (Time.to_sec_f (Time.diff (Engine.now c.stack.eng) c.rtt_sent_at));
          send_ack c;
          c.established_cb ();
          try_send c
        end
    | Syn_received ->
        if seg.flags.syn && not seg.flags.ack then
          (* Duplicate SYN: our SYN-ACK was lost. *)
          send_seg c ~flags:Segment.flag_synack ~seq:c.iss_v ()
        else if seg.flags.ack && seg.ack = c.iss_v + 1 then begin
          c.snd_una_v <- seg.ack;
          c.peer_wnd <- seg.window;
          c.st <- Established;
          c.retries <- 0;
          cancel_rto c;
          c.established_cb ();
          if c.st <> Closed then begin
            process_data c seg;
            process_fin c seg
          end;
          try_send c
        end
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Last_ack ->
        if seg.flags.syn then send_ack c (* stale SYN on live conn *)
        else established_process c seg
    | Closed -> ()

(* --- Stack: demux and open/close --------------------------------------- *)

let default_mss = 1460
let default_rcv_wnd = 400_000

let make_conn stack quad ~mss ~rcv_wnd ~iss ~state =
  {
    stack;
    cquad = quad;
    cmss = mss;
    rcv_wnd;
    st = state;
    iss_v = iss;
    snd_una_v = iss;
    snd_nxt_v = iss;
    sndbuf = Stream_buf.create (iss + 1);
    cc = Congestion.create ~mss;
    peer_wnd = 65535;
    fin_pending = false;
    fin_seq = None;
    irs_v = 0;
    rcv_nxt_v = 0;
    ooo = [];
    delivered = 0;
    srtt_v = 0.0;
    rttvar = 0.0;
    rto = stack.min_rto;
    backoff = 0;
    rto_recover = None;
    rtt_sampling = false;
    rtt_seq = 0;
    rtt_sent_at = Time.zero;
    rto_handle = None;
    retries = 0;
    established_cb = (fun () -> ());
    data_cb = (fun _ -> ());
    close_cb = (fun _ -> ());
    remote_fin_cb = (fun () -> ());
    acked = 0;
    rtx = 0;
    n_in = 0;
    n_out = 0;
  }

let send_rst stack ~src ~dst (seg : Segment.t) =
  let rst =
    {
      Segment.src_port = seg.dst_port;
      dst_port = seg.src_port;
      seq = (if seg.flags.ack then seg.ack else 0);
      ack = seg.seq + Segment.seg_len seg;
      window = 0;
      payload = "";
      flags = { Segment.flag_rst with ack = true };
    }
  in
  raw_send stack ~src ~dst rst

let passive_open stack pkt (seg : Segment.t) accept_cb =
  let quad =
    Quad.v pkt.Packet.dst seg.dst_port pkt.Packet.src seg.src_port
  in
  let iss = Rng.int_in stack.rng 1_000 1_000_000_000 in
  let c =
    make_conn stack quad ~mss:default_mss ~rcv_wnd:default_rcv_wnd ~iss
      ~state:Syn_received
  in
  c.irs_v <- seg.seq;
  c.rcv_nxt_v <- seg.seq + 1;
  c.peer_wnd <- seg.window;
  c.established_cb <- (fun () -> accept_cb c);
  Hashtbl.replace stack.conns quad c;
  send_seg c ~flags:Segment.flag_synack ~seq:iss ();
  c.snd_nxt_v <- iss + 1;
  c.rtt_sent_at <- Engine.now stack.eng;
  arm_rto c

let process_incoming stack pkt (seg : Segment.t) =
  let quad =
    Quad.v pkt.Packet.dst seg.dst_port pkt.Packet.src seg.src_port
  in
  match Hashtbl.find_opt stack.conns quad with
  | Some c -> conn_rx c seg
  | None -> (
      if seg.flags.syn && not seg.flags.ack then
        match Hashtbl.find_opt stack.listeners seg.dst_port with
        | Some accept_cb -> passive_open stack pkt seg accept_cb
        | None -> send_rst stack ~src:pkt.Packet.dst ~dst:pkt.Packet.src seg
      else if not seg.flags.rst then
        send_rst stack ~src:pkt.Packet.dst ~dst:pkt.Packet.src seg)

let create_stack ?(proc_cost = Time.us 2) ?(proc_cost_per_kb = 0)
    ?(hook_cost = Time.ns 500) ?(min_rto = Time.ms 200)
    ?(max_rto = Time.sec 60) ?(max_retries = 8) node =
  let eng = Node.engine node in
  let stack =
    {
      node;
      eng;
      conns = Hashtbl.create 64;
      listeners = Hashtbl.create 8;
      chain = None;
      proc_cost;
      proc_cost_per_kb;
      hook_cost;
      min_rto;
      max_rto;
      max_retries;
      busy_until = Time.zero;
      next_port = 49152;
      frozen = false;
      rng = Rng.split (Engine.rng eng);
    }
  in
  Node.add_handler node (fun pkt ->
      match pkt.Packet.payload with
      | Segment.Tcp seg ->
          let finish =
            occupy ~bytes:(String.length seg.Segment.payload) stack
          in
          ignore
            (Engine.schedule_at eng ~label:"tcp.rx" finish (fun () ->
                 if Node.is_up node && not stack.frozen then
                   process_incoming stack pkt seg));
          true
      | _ -> false);
  stack

let freeze_stack stack =
  stack.frozen <- true;
  if Telemetry.Gate.on () then
    Telemetry.Bus.emit stack.eng
      (Telemetry.Event.Session_frozen
         { node = Node.name stack.node; conns = Hashtbl.length stack.conns })
let is_frozen stack = stack.frozen

let listen stack ~port accept_cb = Hashtbl.replace stack.listeners port accept_cb
let unlisten stack ~port = Hashtbl.remove stack.listeners port

let alloc_port stack =
  let p = stack.next_port in
  stack.next_port <- stack.next_port + 1;
  p

let connect stack ?src ?src_port ?(mss = default_mss)
    ?(rcv_wnd = default_rcv_wnd) ~dst ~dst_port () =
  let src_port = match src_port with Some p -> p | None -> alloc_port stack in
  let local_addr =
    match src with
    | Some a ->
        if not (Node.has_address stack.node a) then
          invalid_arg "Tcp.connect: src is not a local address";
        a
    | None -> (
        match Node.addresses stack.node with
        | a :: _ -> a
        | [] -> invalid_arg "Tcp.connect: node has no address")
  in
  let quad = Quad.v local_addr src_port dst dst_port in
  if Hashtbl.mem stack.conns quad then
    invalid_arg (Printf.sprintf "Tcp.connect: %s in use" (Quad.to_string quad));
  let iss = Rng.int_in stack.rng 1_000 1_000_000_000 in
  let c = make_conn stack quad ~mss ~rcv_wnd ~iss ~state:Syn_sent in
  Hashtbl.replace stack.conns quad c;
  send_seg c ~flags:Segment.flag_syn ~seq:iss ();
  c.snd_nxt_v <- iss + 1;
  c.rtt_sent_at <- Engine.now stack.eng;
  arm_rto c;
  c

let connections stack =
  List.map snd (Det.bindings ~compare:Quad.compare stack.conns)

let write c data =
  (match c.st with
  | Closed | Fin_wait_1 | Fin_wait_2 | Last_ack ->
      invalid_arg "Tcp.write: connection closing or closed"
  | Syn_sent | Syn_received | Established | Close_wait -> ());
  if c.fin_pending then invalid_arg "Tcp.write: close already requested";
  Stream_buf.append c.sndbuf data;
  try_send c

let close c =
  match c.st with
  | Closed -> ()
  | Syn_sent -> teardown c Closed_normally
  | Syn_received | Established | Fin_wait_1 | Fin_wait_2 | Close_wait
  | Last_ack ->
      if not c.fin_pending && c.fin_seq = None then begin
        c.fin_pending <- true;
        try_send c;
        maybe_send_fin c
      end

let abort c =
  if c.st <> Closed then begin
    send_seg c ~flags:Segment.flag_rst ~seq:c.snd_nxt_v ();
    teardown c Reset
  end

let on_established c f = c.established_cb <- f
let on_data c f = c.data_cb <- f
let on_close c f = c.close_cb <- f
let on_remote_close c f = c.remote_fin_cb <- f

let state c = c.st
let quad c = c.cquad
let mss c = c.cmss
let iss c = c.iss_v
let irs c = c.irs_v
let snd_una c = c.snd_una_v
let snd_nxt c = c.snd_nxt_v
let rcv_nxt c = c.rcv_nxt_v
let delivered_bytes c = c.delivered
let bytes_acked c = c.acked
let retransmits c = c.rtx
let segments_in c = c.n_in
let segments_out c = c.n_out
(* lint: allow d3 — 0.0 is the exact "no RTT sample yet" sentinel assigned at creation, never computed *)
let srtt c = if c.srtt_v = 0.0 then None else Some c.srtt_v

let export_repair c =
  Telemetry.Registry.incr m_repair_export;
  if Telemetry.Gate.on () then
    Telemetry.Bus.emit c.stack.eng
      (Telemetry.Event.Repair_export
         {
           conn = Quad.to_string c.cquad;
           unacked = Stream_buf.end_seq c.sndbuf - c.snd_una_v;
           snd_una = c.snd_una_v;
           snd_nxt = c.snd_nxt_v;
           rcv_nxt = c.rcv_nxt_v;
         });
  {
    Repair.quad = c.cquad;
    mss = c.cmss;
    rcv_wnd = c.rcv_wnd;
    iss = c.iss_v;
    irs = c.irs_v;
    snd_una = c.snd_una_v;
    snd_nxt =
      (* Exclude an in-flight FIN from the snapshot: the importer re-sends
         data only. *)
      (match c.fin_seq with Some fs -> min fs c.snd_nxt_v | None -> c.snd_nxt_v);
    rcv_nxt = c.rcv_nxt_v;
    peer_wnd = c.peer_wnd;
    unacked =
      Stream_buf.chunks_from c.sndbuf ~seq:c.snd_una_v
      |> List.filter_map (fun (seq, data) ->
             (* Clip to snd_nxt: written-but-unsent bytes travel too, as
                they are already sequence-assigned in sndbuf. *)
             if seq >= c.snd_nxt_v then None else Some (seq, data));
  }

let import_repair stack (r : Repair.t) =
  if not (Repair.consistent r) then
    invalid_arg "Tcp.import_repair: inconsistent state";
  if Hashtbl.mem stack.conns r.quad then
    invalid_arg
      (Printf.sprintf "Tcp.import_repair: %s in use" (Quad.to_string r.quad));
  let c =
    make_conn stack r.quad ~mss:r.mss ~rcv_wnd:r.rcv_wnd ~iss:r.iss
      ~state:Established
  in
  c.irs_v <- r.irs;
  c.rcv_nxt_v <- r.rcv_nxt;
  c.snd_una_v <- r.snd_una;
  c.snd_nxt_v <- r.snd_una;
  c.peer_wnd <- r.peer_wnd;
  (* Rebuild the send stream from the snapshot; Stream_buf is based at
     snd_una, and the chunks tile exactly (checked by [consistent]). *)
  let sndbuf = Stream_buf.create r.snd_una in
  List.iter (fun (_, data) -> Stream_buf.append sndbuf data) r.unacked;
  let c = { c with sndbuf } in
  Hashtbl.replace stack.conns r.quad c;
  Telemetry.Registry.incr m_repair_import;
  if Telemetry.Gate.on () then
    Telemetry.Bus.emit stack.eng
      (Telemetry.Event.Repair_import
         {
           conn = Quad.to_string r.quad;
           unacked =
             List.fold_left
               (fun acc (_, d) -> acc + String.length d)
               0 r.unacked;
           snd_una = r.snd_una;
           snd_nxt = r.snd_nxt;
           rcv_nxt =
             (* The seeded repair_gap fault skews the reported receive
                cursor one byte past what replication covered; the
                imported connection itself is untouched so the scenario
                still completes and only the continuity checker sees
                the gap. *)
             (r.rcv_nxt + if !Monitor.Faults.repair_gap then 1 else 0);
         });
  (* Announce ourselves: a pure ACK resynchronizes the peer (it will
     retransmit anything above our rcv_nxt), and our unacked data is
     retransmitted by the normal send machinery. *)
  send_ack c;
  try_send c;
  if c.snd_una_v < c.snd_nxt_v && c.rto_handle = None then arm_rto c;
  c
