(** Run-level control: one switch, one reset, one export. *)

val set_enabled : bool -> unit
(** Turns event and span recording on or off (see {!Gate}). *)

val enabled : unit -> bool

val reset : unit -> unit
(** Clears buffered events and spans and zeroes all registered metric
    values. Registrations survive. Call between independent runs. *)

val export_dir : string -> unit
(** Writes [metrics.csv], [metrics.json], [events.jsonl] and
    [spans.jsonl] into the directory, creating it if needed. *)
