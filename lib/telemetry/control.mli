(** Run-level control: one switch, one reset, one export. *)

val set_enabled : bool -> unit
(** Turns event and span recording on or off (see {!Gate}). *)

val enabled : unit -> bool

val set_bus_capacity : ?category:Event.category -> int -> unit
(** Sizes the event-bus rings. Without [?category], sets the global
    per-category capacity (clearing all buffers and overrides, see
    {!Bus.set_capacity}); with it, overrides just that category's ring
    (see {!Bus.set_category_capacity}). Trace-heavy runs (e.g. fig5a
    with the causal tracer attached) size up the chatty categories so
    [telemetry.bus_dropped] stays 0. *)

val reset : unit -> unit
(** Clears buffered events and spans and zeroes all registered metric
    values. Registrations survive. Call between independent runs. *)

val export_dir : string -> unit
(** Writes [metrics.csv], [metrics.json], [events.jsonl] and
    [spans.jsonl] into the directory, creating it if needed. *)
