(** Causal spans over simulated time.

    A span is a named interval [(start_at, stop_at)] with an optional
    parent, forming trees like [failover ⊃ bfd_detect ⊃ tcp_replay].
    Subsystems that cannot know their causal parent (a BFD session
    noticing silence, a replicator catching up) attach to the {e
    ambient} span, which the orchestration layer sets when it starts a
    root span (failure injection) and clears when the root finishes.

    Collection is gated on {!Gate}: when telemetry is off, {!start}
    returns {!none} and every operation on it is a no-op. Orphans are
    harmless by construction — finishing an unknown or already-finished
    id does nothing, and spans never finished export with a null stop. *)

type id = int

val none : id
(** The inert span id returned when telemetry is disabled. *)

type span = {
  sid : id;
  name : string;
  parent : id option;
  start_at : Sim.Time.t;
  mutable stop_at : Sim.Time.t option;
}

val start : ?parent:id -> Sim.Engine.t -> string -> id
(** Opens a span at the current instant. Without [?parent] the span
    attaches to the ambient span (if any). *)

val finish : Sim.Engine.t -> id -> unit
(** Closes a span at the current instant. Unknown / already-closed /
    {!none} ids are ignored. *)

val add :
  ?parent:id -> Sim.Engine.t -> string -> start_at:Sim.Time.t ->
  stop_at:Sim.Time.t -> id
(** Records a retroactively-observed span (e.g. BFD detection, whose
    start is the last control packet heard). *)

val set_ambient : id option -> unit
val ambient : unit -> id option

(** {2 Lifecycle hook}

    One process-global observation hook, installed by [Causal.Recorder]
    to bind span boundaries to the engine events that produced them
    (via [Sim.Engine.current_event_id]). [on_start] fires when a real
    span is recorded ({!start}, and both callbacks for retroactive
    {!add}); [on_finish] fires when an open span is closed. Never fired
    for the inert {!none} id. The hook must be transparent: it may not
    create, mutate, or finish spans, nor touch telemetry. *)

type hook = {
  on_start : id -> Sim.Engine.t -> unit;
  on_finish : id -> Sim.Engine.t -> unit;
}

val set_hook : hook option -> unit
(** Installs (or clears, with [None]) the lifecycle hook. *)

val spans : unit -> span list
(** All recorded spans, in creation order. *)

val find : name:string -> span list
(** Spans with the given name, in creation order. *)

val children : id -> span list

val roots : unit -> span list
(** Spans whose parent is absent or was never recorded. *)

val clear : unit -> unit
(** Forgets all spans and clears the ambient span. *)

val to_jsonl : Buffer.t -> unit
(** One JSON object per span:
    [{"id":..,"parent":..,"name":..,"start_ns":..,"stop_ns":..,"dur_ns":..}]. *)

val pp_tree : Format.formatter -> unit -> unit
(** Renders the span forest with indentation and durations. *)
