(** Typed structured events.

    Every notable occurrence in the NSR pipeline is a variant carrying
    the fields the paper's evaluation reads off (node, peer, sequence
    numbers, byte counts, durations) instead of a formatted string.
    Events are grouped into per-subsystem categories; the bus keeps one
    ring buffer per category.

    [legacy] renders an event to the exact [(category, message)] pair
    the old stringly {!Sim.Trace} call sites produced, which is what
    keeps existing trace queries (e.g. Table 1's ["detect"] /
    ["tcp-synced"] lookups) working unchanged. *)

type category = Tcp | Bgp | Bfd | Netfilter | Replicator | Orch | Store | Fleet

val categories : category list
(** All categories, in a fixed order. [Fleet] is appended last so the
    older categories keep their ring indices and pre-fleet replay
    digests stay byte-identical. *)

val category_name : category -> string
(** Lower-case name, e.g. ["tcp"]. *)

val category_of_name : string -> category option

type t =
  (* tcp *)
  | Seg_retransmit of { conn : string; seq : int; len : int }
  | Rto_fired of { conn : string; backoff : int; rto_s : float }
  | Repair_export of {
      conn : string;
      unacked : int;
      snd_una : int;
      snd_nxt : int;
      rcv_nxt : int;
    }
  | Repair_import of {
      conn : string;
      unacked : int;
      snd_una : int;
      snd_nxt : int;
      rcv_nxt : int;
    }
  | Session_frozen of { node : string; conns : int }
  (* bgp *)
  | Session_established of { node : string; peer : string }
  | Session_down of { node : string; peer : string; reason : string }
  | Session_resumed of { node : string; peer : string }
  | Rib_snapshot of { node : string; vrf : string; size : int; digest : string }
  | Routes_withdrawn of { node : string; peer : string; count : int }
  (* bfd *)
  | Bfd_up of { node : string; peer : string; vrf : string }
  | Bfd_down of {
      node : string;
      peer : string;
      vrf : string;
      silent_s : float;
      interval_s : float;
      mult : int;
    }
  (* netfilter *)
  | Queue_dropped of { qnum : int; depth : int }
  (* replicator *)
  | Ack_held of { conn : string; ack : int; depth : int }
  | Ack_released of { conn : string; ack : int; held_s : float }
  | Ack_dropped of { conn : string; ack : int }
  | Ack_shed of { conn : string; ack : int; held_s : float }
    (** Flushed without durability at degraded-mode entry: the deadline
        expired, so the ACK is released to keep the peer's window open
        while NSR protection is suspended. Distinct from [Ack_released]
        (durable) and [Ack_dropped] (stream died). *)
  | Degraded_enter of { conn : string; held : int; oldest_held_s : float }
  | Degraded_exit of { conn : string; degraded_s : float; epoch : int }
  | Wm_durable of { conn : string; ack : int }
  | Catchup_start of { service : string; vrf : string }
  | Catchup_done of { service : string; vrf : string; msgs : int; bytes : int }
  | Replica_promoted of { service : string; container : string }
  (* orch *)
  | Container_state of { id : string; host : string; state : string }
  | Failure_detected of { id : string; kind : string }
  | Migration_initiated of { id : string }
  | Migration_done of { id : string; host : string; container : string }
  | Host_suspect of { host : string }
  | Host_failed of { host : string }
  | Failure_injected of { service : string; kind : string }
  | Planned_migration of { service : string }
  | Tcp_synced of { service : string; vrf : string }
  | Store_unreachable of { node : string }
  | Store_recovered of { node : string; outage_s : float }
  | Migration_deferred of { id : string; reason : string }
  (* store *)
  | Store_crashed of { node : string }
  | Store_restarted of { node : string }
  | Store_promoted of { node : string }
  | Store_failover of { client : string; attempts : int }
  | Rpc_unknown_service of { node : string; service : string; count : int }
  (* fleet *)
  | Fleet_placed of {
      service : string;
      instance : string;
      region : string;
      host : string;
      container : string;
    }
    (** An instance (replica of a fleet service) was placed: at initial
        deployment and never again — post-migration container identity
        travels on [Migration_done] / [Upgrade_done]. *)
  | Upgrade_started of {
      instance : string;
      wave : int;
      inflight : int;
      bound : int;
    }
    (** A rolling-upgrade drain began for [instance]; [inflight] counts
        this one, and must never exceed [bound]. *)
  | Upgrade_done of { instance : string; wave : int; container : string }
  | Fleet_degraded of { instance : string; region : string }
    (** The instance shed NSR protection because its region store went
        unreachable (fleet-level view of PR 6's degraded mode). *)
  | Fleet_rearmed of { instance : string; region : string; degraded_s : float }
  (* escape hatch *)
  | Generic of { cat : category; name : string; detail : string }

val category : t -> category

val name : t -> string
(** Snake-case constructor name, e.g. ["seg_retransmit"]. *)

type field = Int of int | Float of float | Str of string

val fields : t -> (string * field) list
(** The event's payload as a flat field list, for JSON export. *)

val legacy : t -> string * string
(** [(trace_category, message)] — byte-identical to the strings the
    replaced [Trace.emitf] call sites used to emit, for the events that
    replaced one; a readable rendering for the rest. *)

val to_json : t -> string
(** One JSON object: [{"cat":...,"ev":...,"f":{...}}]. *)

val json_escape : string -> string
(** Escapes a string for embedding in a JSON string literal. *)
