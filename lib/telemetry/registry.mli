(** The global metrics registry.

    Named counters, gauges and log-bucketed histograms that register
    themselves on creation (typically as module toplevels next to the
    code they instrument) and export en masse to CSV or JSON. Creation
    is idempotent by name — asking for an existing metric of the same
    kind returns it — so instrumented libraries can be (re)initialized
    freely; a name collision across kinds is a programming error and
    raises [Invalid_argument].

    Updates are deliberately NOT gated on {!Gate}: bumping an [int ref]
    is as cheap as the gate check would be, so registered metrics are
    always live (like the per-connection stats that predate this
    module). {!reset_values} zeroes everything between runs. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** [set_max g v] raises the gauge to [v] if above its current value —
    a high-water mark. *)

val set_int : gauge -> int -> unit
(** [set g (float_of_int v)] without boxing the intermediate float —
    use on hot paths that track integer depths or counts. *)

val set_max_int : gauge -> int -> unit
(** [set_max g (float_of_int v)], allocation-free like {!set_int}. *)

val gauge_value : gauge -> float

(** {1 Log-bucketed histograms} *)

type histogram

val histogram : string -> histogram
(** Buckets are powers of two: an observation [v] falls in the bucket
    with exclusive upper bound [2^k] where [2^(k-1) <= v < 2^k];
    non-positive observations land in a dedicated bucket with upper
    bound [0]. Bounds span [2^-30, 2^33] seconds-ish; values outside
    clamp to the extreme buckets. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_min : histogram -> float
(** Smallest observation (NaN while empty). *)

val hist_max : histogram -> float
(** Largest observation (NaN while empty). *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile from the log buckets.
    [q <= 0] returns the observed minimum and [q >= 1] the observed
    maximum (real values, not bucket edges); interior quantiles
    interpolate by rank within the covering bucket and are clamped to
    the observed range. NaN when the histogram is empty or [q] is
    NaN. *)

val buckets : histogram -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)], bounds increasing. *)

(** {1 Enumeration and export} *)

type metric =
  | Counter of string * counter
  | Gauge of string * gauge
  | Histogram of string * histogram

val all : unit -> metric list
(** Every registered metric, in registration order. *)

val metric_name : metric -> string

val to_csv : unit -> string
(** Header [name,kind,count,sum] — counters fill [count], gauges and
    histogram sums fill [sum], histograms fill both. *)

val to_json : unit -> string
(** [{"metrics":[{"name":..,"kind":..,..}, ...]}] with histogram
    buckets included. *)

val reset_values : unit -> unit
(** Zeroes every metric, keeping registrations. *)
