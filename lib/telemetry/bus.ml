type entry = { seq : int; at : Sim.Time.t; event : Event.t }

type ring = {
  mutable arr : entry array; (* [||] until first emit *)
  mutable start : int; (* index of oldest entry *)
  mutable len : int;
  mutable total : int;
}

let capacity = ref 8192
let seq_counter = ref 0

let ncats = List.length Event.categories

(* Per-category capacity overrides (None = use the global [capacity]).
   Trace-heavy runs size up only the chatty categories instead of
   multiplying every ring. *)
let cat_capacity : int option array = Array.make ncats None

let cat_index c =
  let rec find i = function
    | [] -> 0
    | c' :: rest -> if c' = c then i else find (i + 1) rest
  in
  find 0 Event.categories

let rings =
  Array.init ncats (fun _ -> { arr = [||]; start = 0; len = 0; total = 0 })

(* Live subscribers: invoked synchronously from [emit], after the ring
   push, so callbacks observe entries in global-seq order. A [cat] of
   [None] is a firehose subscription. *)
type sub = { id : int; cat : Event.category option; fn : entry -> unit }

let sub_counter = ref 0
let subs : sub list ref = ref []

let subscribe ?category fn =
  incr sub_counter;
  let s = { id = !sub_counter; cat = category; fn } in
  subs := !subs @ [ s ];
  s

let unsubscribe s = subs := List.filter (fun s' -> s'.id <> s.id) !subs
let subscriber_count () = List.length !subs

(* Overflow observability: overwrites are counted in the registry (the
   ring's own [total - len] resets with [clear], the counter survives a
   run) and each category keeps a high-water occupancy gauge, so a ring
   sized too small for a scenario is visible instead of silently eating
   the oldest events. Registered lazily: a process that never emits
   never grows its metric listing. *)
let dropped_counter = lazy (Registry.counter "telemetry.bus_dropped")

let hwm_gauges =
  lazy
    (Array.of_list
       (List.map
          (fun c -> Registry.gauge ("telemetry.ring_hwm." ^ Event.category_name c))
          Event.categories))

(* Returns [true] when the push overwrote the oldest entry. The ring's
   array is sized on first push from the category's effective capacity;
   capacity changes clear the ring so the next push resizes. *)
let push r ~cap:want e =
  if Array.length r.arr = 0 then r.arr <- Array.make want e;
  let cap = Array.length r.arr in
  r.total <- r.total + 1;
  if r.len < cap then begin
    r.arr.((r.start + r.len) mod cap) <- e;
    r.len <- r.len + 1;
    false
  end
  else begin
    r.arr.(r.start) <- e;
    r.start <- (r.start + 1) mod cap;
    true
  end

let emit ?legacy eng event =
  (match legacy with
  | Some tr ->
      let cat, msg = Event.legacy event in
      Sim.Trace.emit tr eng cat msg
  | None -> ());
  if Gate.on () then begin
    incr seq_counter;
    let cat = Event.category event in
    let ci = cat_index cat in
    let e = { seq = !seq_counter; at = Sim.Engine.now eng; event } in
    let r = rings.(ci) in
    let cap =
      match cat_capacity.(ci) with Some n -> n | None -> !capacity
    in
    if push r ~cap e then Registry.incr (Lazy.force dropped_counter);
    Registry.set_max (Lazy.force hwm_gauges).(ci) (float_of_int r.len);
    List.iter
      (fun s ->
        match s.cat with
        | None -> s.fn e
        | Some c -> if c = cat then s.fn e)
      !subs
  end

let ring_entries r =
  List.init r.len (fun i -> r.arr.((r.start + i) mod Array.length r.arr))

let events ?category () =
  match category with
  | Some c -> ring_entries rings.(cat_index c)
  | None ->
      Array.to_list rings
      |> List.concat_map ring_entries
      |> List.sort (fun a b -> Int.compare a.seq b.seq)

let total c = rings.(cat_index c).total
let dropped c =
  let r = rings.(cat_index c) in
  r.total - r.len

let dropped_total () =
  Array.fold_left (fun acc r -> acc + (r.total - r.len)) 0 rings

(* [clear] drops buffered entries but keeps subscribers: monitors
   installed across a [Control.reset] keep observing the next run. *)
let clear () =
  Array.iter
    (fun r ->
      r.arr <- [||];
      r.start <- 0;
      r.len <- 0;
      r.total <- 0)
    rings;
  seq_counter := 0

let set_capacity n =
  if n <= 0 then invalid_arg "Bus.set_capacity: capacity must be positive";
  capacity := n;
  Array.fill cat_capacity 0 ncats None;
  clear ()

let set_category_capacity c n =
  if n <= 0 then
    invalid_arg "Bus.set_category_capacity: capacity must be positive";
  let ci = cat_index c in
  cat_capacity.(ci) <- Some n;
  (* Only the resized ring is cleared; other categories keep their
     buffered entries. *)
  let r = rings.(ci) in
  r.arr <- [||];
  r.start <- 0;
  r.len <- 0;
  r.total <- 0

let category_capacity c =
  match cat_capacity.(cat_index c) with Some n -> n | None -> !capacity

let pp_entry fmt e =
  let cat, msg = Event.legacy e.event in
  Format.fprintf fmt "#%d [%a] %s: %s" e.seq Sim.Time.pp e.at cat msg

let to_jsonl buf =
  List.iter
    (fun e ->
      let body = Event.to_json e.event in
      (* body = {"cat":...}; splice seq/time in front. *)
      Buffer.add_string buf
        (Printf.sprintf "{\"seq\":%d,\"t_ns\":%d,%s\n" e.seq e.at
           (String.sub body 1 (String.length body - 1))))
    (events ())
