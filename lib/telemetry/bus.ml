type entry = { seq : int; at : Sim.Time.t; event : Event.t }

type ring = {
  mutable arr : entry array; (* [||] until first emit *)
  mutable start : int; (* index of oldest entry *)
  mutable len : int;
  mutable total : int;
}

(* Live subscribers: invoked synchronously from [emit], after the ring
   push, so callbacks observe entries in global-seq order. A [cat] of
   [None] is a firehose subscription. *)
type sub = { id : int; cat : Event.category option; fn : entry -> unit }

let ncats = List.length Event.categories

(* The whole bus is domain-local: rings, the sequence counter, capacity
   settings and subscriber lists. Each domain of a parallel campaign
   records its runs into a private bus whose [seq] starts at 0 exactly
   like a fresh process, which is what keeps per-run telemetry digests
   independent of how runs are spread across domains. *)
type state = {
  mutable capacity : int;
  mutable seq_counter : int;
  (* Per-category capacity overrides (None = use [capacity]).
     Trace-heavy runs size up only the chatty categories instead of
     multiplying every ring. *)
  cat_capacity : int option array;
  rings : ring array;
  mutable sub_counter : int;
  mutable subs : sub list;
  (* Overflow observability: overwrites are counted in the registry
     (the ring's own [total - len] resets with [clear], the counter
     survives a run) and each category keeps a high-water occupancy
     gauge, so a ring sized too small for a scenario is visible instead
     of silently eating the oldest events. Fetched on first overflow /
     first emit: a domain that never emits never grows its metric
     listing. (These were process-level [lazy] cells before the bus
     went domain-local; concurrent forcing of a shared lazy is a race,
     cached registry lookups are not.) *)
  mutable dropped_counter : Registry.counter option;
  mutable hwm_gauges : Registry.gauge array; (* [||] until first emit *)
}

let key =
  Domain.DLS.new_key (fun () ->
      {
        capacity = 8192;
        seq_counter = 0;
        cat_capacity = Array.make ncats None;
        rings =
          Array.init ncats (fun _ ->
              { arr = [||]; start = 0; len = 0; total = 0 });
        sub_counter = 0;
        subs = [];
        dropped_counter = None;
        hwm_gauges = [||];
      })

let state () = Domain.DLS.get key

let cat_index c =
  let rec find i = function
    | [] -> 0
    | c' :: rest -> if c' = c then i else find (i + 1) rest
  in
  find 0 Event.categories

let subscribe ?category fn =
  let st = state () in
  st.sub_counter <- st.sub_counter + 1;
  let s = { id = st.sub_counter; cat = category; fn } in
  st.subs <- st.subs @ [ s ];
  s

let unsubscribe s =
  let st = state () in
  st.subs <- List.filter (fun s' -> s'.id <> s.id) st.subs

let subscriber_count () = List.length (state ()).subs

let dropped_counter st =
  match st.dropped_counter with
  | Some c -> c
  | None ->
      let c = Registry.counter "telemetry.bus_dropped" in
      st.dropped_counter <- Some c;
      c

let hwm_gauges st =
  if Array.length st.hwm_gauges = 0 then
    st.hwm_gauges <-
      Array.of_list
        (List.map
           (fun c ->
             Registry.gauge ("telemetry.ring_hwm." ^ Event.category_name c))
           Event.categories);
  st.hwm_gauges

(* Returns [true] when the push overwrote the oldest entry. The ring's
   array is sized on first push from the category's effective capacity;
   capacity changes clear the ring so the next push resizes. *)
let push r ~cap:want e =
  if Array.length r.arr = 0 then r.arr <- Array.make want e;
  let cap = Array.length r.arr in
  r.total <- r.total + 1;
  if r.len < cap then begin
    r.arr.((r.start + r.len) mod cap) <- e;
    r.len <- r.len + 1;
    false
  end
  else begin
    r.arr.(r.start) <- e;
    r.start <- (r.start + 1) mod cap;
    true
  end

let emit ?legacy eng event =
  (match legacy with
  | Some tr ->
      let cat, msg = Event.legacy event in
      Sim.Trace.emit tr eng cat msg
  | None -> ());
  if Gate.on () then begin
    let st = state () in
    st.seq_counter <- st.seq_counter + 1;
    let cat = Event.category event in
    let ci = cat_index cat in
    let e = { seq = st.seq_counter; at = Sim.Engine.now eng; event } in
    let r = st.rings.(ci) in
    let cap =
      match st.cat_capacity.(ci) with Some n -> n | None -> st.capacity
    in
    if push r ~cap e then Registry.incr (dropped_counter st);
    Registry.set_max_int (hwm_gauges st).(ci) r.len;
    List.iter
      (fun s ->
        match s.cat with
        | None -> s.fn e
        | Some c -> if c = cat then s.fn e)
      st.subs
  end

let ring_entries r =
  List.init r.len (fun i -> r.arr.((r.start + i) mod Array.length r.arr))

let events ?category () =
  let st = state () in
  match category with
  | Some c -> ring_entries st.rings.(cat_index c)
  | None ->
      Array.to_list st.rings
      |> List.concat_map ring_entries
      |> List.sort (fun a b -> Int.compare a.seq b.seq)

let total c = (state ()).rings.(cat_index c).total

let dropped c =
  let r = (state ()).rings.(cat_index c) in
  r.total - r.len

let dropped_total () =
  Array.fold_left (fun acc r -> acc + (r.total - r.len)) 0 (state ()).rings

(* [clear] drops buffered entries but keeps subscribers: monitors
   installed across a [Control.reset] keep observing the next run. *)
let clear () =
  let st = state () in
  Array.iter
    (fun r ->
      r.arr <- [||];
      r.start <- 0;
      r.len <- 0;
      r.total <- 0)
    st.rings;
  st.seq_counter <- 0

let set_capacity n =
  if n <= 0 then invalid_arg "Bus.set_capacity: capacity must be positive";
  let st = state () in
  st.capacity <- n;
  Array.fill st.cat_capacity 0 ncats None;
  clear ()

let set_category_capacity c n =
  if n <= 0 then
    invalid_arg "Bus.set_category_capacity: capacity must be positive";
  let st = state () in
  let ci = cat_index c in
  st.cat_capacity.(ci) <- Some n;
  (* Only the resized ring is cleared; other categories keep their
     buffered entries. *)
  let r = st.rings.(ci) in
  r.arr <- [||];
  r.start <- 0;
  r.len <- 0;
  r.total <- 0

let category_capacity c =
  let st = state () in
  match st.cat_capacity.(cat_index c) with Some n -> n | None -> st.capacity

let pp_entry fmt e =
  let cat, msg = Event.legacy e.event in
  Format.fprintf fmt "#%d [%a] %s: %s" e.seq Sim.Time.pp e.at cat msg

let to_jsonl buf =
  List.iter
    (fun e ->
      let body = Event.to_json e.event in
      (* body = {"cat":...}; splice seq/time in front. *)
      Buffer.add_string buf
        (Printf.sprintf "{\"seq\":%d,\"t_ns\":%d,%s\n" e.seq e.at
           (String.sub body 1 (String.length body - 1))))
    (events ())
