let set_enabled = Gate.set
let enabled = Gate.on

let set_bus_capacity ?category n =
  match category with
  | None -> Bus.set_capacity n
  | Some c -> Bus.set_category_capacity c n

let reset () =
  Bus.clear ();
  Span.clear ();
  Registry.reset_values ()

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let export_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  write_file (Filename.concat dir "metrics.csv") (Registry.to_csv ());
  write_file (Filename.concat dir "metrics.json") (Registry.to_json ());
  let buf = Buffer.create 4096 in
  Bus.to_jsonl buf;
  write_file (Filename.concat dir "events.jsonl") (Buffer.contents buf);
  Buffer.clear buf;
  Span.to_jsonl buf;
  write_file (Filename.concat dir "spans.jsonl") (Buffer.contents buf)
