type category = Tcp | Bgp | Bfd | Netfilter | Replicator | Orch | Store | Fleet

(* [Fleet] is appended so existing categories keep their ring indices;
   an empty ring contributes nothing to [Bus.to_jsonl], which keeps
   pre-fleet replay digests byte-identical. *)
let categories = [ Tcp; Bgp; Bfd; Netfilter; Replicator; Orch; Store; Fleet ]

let category_name = function
  | Tcp -> "tcp"
  | Bgp -> "bgp"
  | Bfd -> "bfd"
  | Netfilter -> "netfilter"
  | Replicator -> "replicator"
  | Orch -> "orch"
  | Store -> "store"
  | Fleet -> "fleet"

let category_of_name = function
  | "tcp" -> Some Tcp
  | "bgp" -> Some Bgp
  | "bfd" -> Some Bfd
  | "netfilter" -> Some Netfilter
  | "replicator" -> Some Replicator
  | "orch" -> Some Orch
  | "store" -> Some Store
  | "fleet" -> Some Fleet
  | _ -> None

type t =
  | Seg_retransmit of { conn : string; seq : int; len : int }
  | Rto_fired of { conn : string; backoff : int; rto_s : float }
  | Repair_export of {
      conn : string;
      unacked : int;
      snd_una : int;
      snd_nxt : int;
      rcv_nxt : int;
    }
  | Repair_import of {
      conn : string;
      unacked : int;
      snd_una : int;
      snd_nxt : int;
      rcv_nxt : int;
    }
  | Session_frozen of { node : string; conns : int }
  | Session_established of { node : string; peer : string }
  | Session_down of { node : string; peer : string; reason : string }
  | Session_resumed of { node : string; peer : string }
  | Rib_snapshot of { node : string; vrf : string; size : int; digest : string }
  | Routes_withdrawn of { node : string; peer : string; count : int }
  | Bfd_up of { node : string; peer : string; vrf : string }
  | Bfd_down of {
      node : string;
      peer : string;
      vrf : string;
      silent_s : float;
      interval_s : float;
      mult : int;
    }
  | Queue_dropped of { qnum : int; depth : int }
  | Ack_held of { conn : string; ack : int; depth : int }
  | Ack_released of { conn : string; ack : int; held_s : float }
  | Ack_dropped of { conn : string; ack : int }
  | Ack_shed of { conn : string; ack : int; held_s : float }
  | Degraded_enter of { conn : string; held : int; oldest_held_s : float }
  | Degraded_exit of { conn : string; degraded_s : float; epoch : int }
  | Wm_durable of { conn : string; ack : int }
  | Catchup_start of { service : string; vrf : string }
  | Catchup_done of { service : string; vrf : string; msgs : int; bytes : int }
  | Replica_promoted of { service : string; container : string }
  | Container_state of { id : string; host : string; state : string }
  | Failure_detected of { id : string; kind : string }
  | Migration_initiated of { id : string }
  | Migration_done of { id : string; host : string; container : string }
  | Host_suspect of { host : string }
  | Host_failed of { host : string }
  | Failure_injected of { service : string; kind : string }
  | Planned_migration of { service : string }
  | Tcp_synced of { service : string; vrf : string }
  | Store_unreachable of { node : string }
  | Store_recovered of { node : string; outage_s : float }
  | Migration_deferred of { id : string; reason : string }
  | Store_crashed of { node : string }
  | Store_restarted of { node : string }
  | Store_promoted of { node : string }
  | Store_failover of { client : string; attempts : int }
  | Rpc_unknown_service of { node : string; service : string; count : int }
  | Fleet_placed of {
      service : string;
      instance : string;
      region : string;
      host : string;
      container : string;
    }
  | Upgrade_started of {
      instance : string;
      wave : int;
      inflight : int;
      bound : int;
    }
  | Upgrade_done of { instance : string; wave : int; container : string }
  | Fleet_degraded of { instance : string; region : string }
  | Fleet_rearmed of { instance : string; region : string; degraded_s : float }
  | Generic of { cat : category; name : string; detail : string }

let category = function
  | Seg_retransmit _ | Rto_fired _ | Repair_export _ | Repair_import _
  | Session_frozen _ ->
      Tcp
  | Session_established _ | Session_down _ | Session_resumed _
  | Rib_snapshot _ | Routes_withdrawn _ ->
      Bgp
  | Bfd_up _ | Bfd_down _ -> Bfd
  | Queue_dropped _ -> Netfilter
  | Ack_held _ | Ack_released _ | Ack_dropped _ | Ack_shed _
  | Degraded_enter _ | Degraded_exit _ | Wm_durable _
  | Catchup_start _ | Catchup_done _ | Replica_promoted _ ->
      Replicator
  | Container_state _ | Failure_detected _ | Migration_initiated _
  | Migration_done _ | Host_suspect _ | Host_failed _ | Failure_injected _
  | Planned_migration _ | Tcp_synced _ | Store_unreachable _
  | Store_recovered _ | Migration_deferred _ ->
      Orch
  | Store_crashed _ | Store_restarted _ | Store_promoted _ | Store_failover _
  | Rpc_unknown_service _ ->
      Store
  | Fleet_placed _ | Upgrade_started _ | Upgrade_done _ | Fleet_degraded _
  | Fleet_rearmed _ ->
      Fleet
  | Generic { cat; _ } -> cat

let name = function
  | Seg_retransmit _ -> "seg_retransmit"
  | Rto_fired _ -> "rto_fired"
  | Repair_export _ -> "repair_export"
  | Repair_import _ -> "repair_import"
  | Session_frozen _ -> "session_frozen"
  | Session_established _ -> "session_established"
  | Session_down _ -> "session_down"
  | Session_resumed _ -> "session_resumed"
  | Rib_snapshot _ -> "rib_snapshot"
  | Routes_withdrawn _ -> "routes_withdrawn"
  | Bfd_up _ -> "bfd_up"
  | Bfd_down _ -> "bfd_down"
  | Queue_dropped _ -> "queue_dropped"
  | Ack_held _ -> "ack_held"
  | Ack_released _ -> "ack_released"
  | Ack_dropped _ -> "ack_dropped"
  | Ack_shed _ -> "ack_shed"
  | Degraded_enter _ -> "degraded_enter"
  | Degraded_exit _ -> "degraded_exit"
  | Wm_durable _ -> "wm_durable"
  | Catchup_start _ -> "catchup_start"
  | Catchup_done _ -> "catchup_done"
  | Replica_promoted _ -> "replica_promoted"
  | Container_state _ -> "container_state"
  | Failure_detected _ -> "failure_detected"
  | Migration_initiated _ -> "migration_initiated"
  | Migration_done _ -> "migration_done"
  | Host_suspect _ -> "host_suspect"
  | Host_failed _ -> "host_failed"
  | Failure_injected _ -> "failure_injected"
  | Planned_migration _ -> "planned_migration"
  | Tcp_synced _ -> "tcp_synced"
  | Store_unreachable _ -> "store_unreachable"
  | Store_recovered _ -> "store_recovered"
  | Migration_deferred _ -> "migration_deferred"
  | Store_crashed _ -> "store_crashed"
  | Store_restarted _ -> "store_restarted"
  | Store_promoted _ -> "store_promoted"
  | Store_failover _ -> "store_failover"
  | Rpc_unknown_service _ -> "rpc_unknown_service"
  | Fleet_placed _ -> "fleet_placed"
  | Upgrade_started _ -> "upgrade_started"
  | Upgrade_done _ -> "upgrade_done"
  | Fleet_degraded _ -> "fleet_degraded"
  | Fleet_rearmed _ -> "fleet_rearmed"
  | Generic { name; _ } -> name

type field = Int of int | Float of float | Str of string

let fields = function
  | Seg_retransmit { conn; seq; len } ->
      [ ("conn", Str conn); ("seq", Int seq); ("len", Int len) ]
  | Rto_fired { conn; backoff; rto_s } ->
      [ ("conn", Str conn); ("backoff", Int backoff); ("rto_s", Float rto_s) ]
  | Repair_export { conn; unacked; snd_una; snd_nxt; rcv_nxt } ->
      [
        ("conn", Str conn); ("unacked", Int unacked);
        ("snd_una", Int snd_una); ("snd_nxt", Int snd_nxt);
        ("rcv_nxt", Int rcv_nxt);
      ]
  | Repair_import { conn; unacked; snd_una; snd_nxt; rcv_nxt } ->
      [
        ("conn", Str conn); ("unacked", Int unacked);
        ("snd_una", Int snd_una); ("snd_nxt", Int snd_nxt);
        ("rcv_nxt", Int rcv_nxt);
      ]
  | Session_frozen { node; conns } ->
      [ ("node", Str node); ("conns", Int conns) ]
  | Session_established { node; peer } ->
      [ ("node", Str node); ("peer", Str peer) ]
  | Session_down { node; peer; reason } ->
      [ ("node", Str node); ("peer", Str peer); ("reason", Str reason) ]
  | Session_resumed { node; peer } -> [ ("node", Str node); ("peer", Str peer) ]
  | Rib_snapshot { node; vrf; size; digest } ->
      [
        ("node", Str node); ("vrf", Str vrf); ("size", Int size);
        ("digest", Str digest);
      ]
  | Routes_withdrawn { node; peer; count } ->
      [ ("node", Str node); ("peer", Str peer); ("count", Int count) ]
  | Bfd_up { node; peer; vrf } ->
      [ ("node", Str node); ("peer", Str peer); ("vrf", Str vrf) ]
  | Bfd_down { node; peer; vrf; silent_s; interval_s; mult } ->
      [
        ("node", Str node); ("peer", Str peer); ("vrf", Str vrf);
        ("silent_s", Float silent_s); ("interval_s", Float interval_s);
        ("mult", Int mult);
      ]
  | Queue_dropped { qnum; depth } -> [ ("qnum", Int qnum); ("depth", Int depth) ]
  | Ack_held { conn; ack; depth } ->
      [ ("conn", Str conn); ("ack", Int ack); ("depth", Int depth) ]
  | Ack_released { conn; ack; held_s } ->
      [ ("conn", Str conn); ("ack", Int ack); ("held_s", Float held_s) ]
  | Ack_dropped { conn; ack } -> [ ("conn", Str conn); ("ack", Int ack) ]
  | Ack_shed { conn; ack; held_s } ->
      [ ("conn", Str conn); ("ack", Int ack); ("held_s", Float held_s) ]
  | Degraded_enter { conn; held; oldest_held_s } ->
      [
        ("conn", Str conn); ("held", Int held);
        ("oldest_held_s", Float oldest_held_s);
      ]
  | Degraded_exit { conn; degraded_s; epoch } ->
      [
        ("conn", Str conn); ("degraded_s", Float degraded_s);
        ("epoch", Int epoch);
      ]
  | Wm_durable { conn; ack } -> [ ("conn", Str conn); ("ack", Int ack) ]
  | Catchup_start { service; vrf } ->
      [ ("service", Str service); ("vrf", Str vrf) ]
  | Catchup_done { service; vrf; msgs; bytes } ->
      [
        ("service", Str service); ("vrf", Str vrf); ("msgs", Int msgs);
        ("bytes", Int bytes);
      ]
  | Replica_promoted { service; container } ->
      [ ("service", Str service); ("container", Str container) ]
  | Container_state { id; host; state } ->
      [ ("id", Str id); ("host", Str host); ("state", Str state) ]
  | Failure_detected { id; kind } -> [ ("id", Str id); ("kind", Str kind) ]
  | Migration_initiated { id } -> [ ("id", Str id) ]
  | Migration_done { id; host; container } ->
      [ ("id", Str id); ("host", Str host); ("container", Str container) ]
  | Host_suspect { host } -> [ ("host", Str host) ]
  | Host_failed { host } -> [ ("host", Str host) ]
  | Failure_injected { service; kind } ->
      [ ("service", Str service); ("kind", Str kind) ]
  | Planned_migration { service } -> [ ("service", Str service) ]
  | Tcp_synced { service; vrf } ->
      [ ("service", Str service); ("vrf", Str vrf) ]
  | Store_unreachable { node } -> [ ("node", Str node) ]
  | Store_recovered { node; outage_s } ->
      [ ("node", Str node); ("outage_s", Float outage_s) ]
  | Migration_deferred { id; reason } ->
      [ ("id", Str id); ("reason", Str reason) ]
  | Store_crashed { node } -> [ ("node", Str node) ]
  | Store_restarted { node } -> [ ("node", Str node) ]
  | Store_promoted { node } -> [ ("node", Str node) ]
  | Store_failover { client; attempts } ->
      [ ("client", Str client); ("attempts", Int attempts) ]
  | Rpc_unknown_service { node; service; count } ->
      [ ("node", Str node); ("service", Str service); ("count", Int count) ]
  | Fleet_placed { service; instance; region; host; container } ->
      [
        ("service", Str service); ("instance", Str instance);
        ("region", Str region); ("host", Str host);
        ("container", Str container);
      ]
  | Upgrade_started { instance; wave; inflight; bound } ->
      [
        ("instance", Str instance); ("wave", Int wave);
        ("inflight", Int inflight); ("bound", Int bound);
      ]
  | Upgrade_done { instance; wave; container } ->
      [
        ("instance", Str instance); ("wave", Int wave);
        ("container", Str container);
      ]
  | Fleet_degraded { instance; region } ->
      [ ("instance", Str instance); ("region", Str region) ]
  | Fleet_rearmed { instance; region; degraded_s } ->
      [
        ("instance", Str instance); ("region", Str region);
        ("degraded_s", Float degraded_s);
      ]
  | Generic { detail; _ } -> [ ("detail", Str detail) ]

(* The first group must stay byte-identical to the Trace.emitf strings
   they replaced: experiments and examples query these categories. *)
let legacy ev =
  match ev with
  | Failure_detected { id; kind } -> ("detect", id ^ " " ^ kind)
  | Migration_initiated { id } -> ("initiate", id)
  | Migration_done { id; host; container } ->
      ("migrate", Printf.sprintf "%s -> %s/%s" id host container)
  | Host_suspect { host } -> ("host-suspect", host)
  | Host_failed { host } -> ("host-failed", host)
  | Failure_injected { service; kind } -> ("inject", service ^ " " ^ kind)
  | Planned_migration { service } -> ("planned", service)
  | Tcp_synced { service; vrf } -> ("tcp-synced", service ^ "/" ^ vrf)
  | Generic { name; detail; _ } -> (name, detail)
  | _ ->
      ( category_name (category ev),
        String.concat " "
          (name ev
          :: List.map
               (fun (k, v) ->
                 k ^ "="
                 ^
                 match v with
                 | Int i -> string_of_int i
                 | Float f -> Printf.sprintf "%g" f
                 | Str s -> s)
               (fields ev)) )

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let field_json = function
  | Int i -> string_of_int i
  | Float f ->
      (* JSON has no literal for non-finite numbers. *)
      if Float.is_nan f then "null"
      else if not (Float.is_finite f) then (if f > 0.0 then "1e999" else "-1e999")
      else if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.1f" f
      else Printf.sprintf "%.9g" f
  | Str s -> "\"" ^ json_escape s ^ "\""

(* Event names are usually constructor-derived, but [Generic] carries a
   caller-supplied name — escape it like any other string. *)
let to_json ev =
  Printf.sprintf "{\"cat\":\"%s\",\"ev\":\"%s\",\"f\":{%s}}"
    (category_name (category ev))
    (json_escape (name ev))
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (field_json v))
          (fields ev)))
