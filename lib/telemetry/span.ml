type id = int

let none = -1

type span = {
  sid : id;
  name : string;
  parent : id option;
  start_at : Sim.Time.t;
  mutable stop_at : Sim.Time.t option;
}

(* Lifecycle hook (Causal.Recorder installs itself here) to bind span
   boundaries to engine events: fired when a real span is recorded and
   when it finishes, with the engine whose clock stamped the boundary.
   Observation-only — the hook must not touch spans or telemetry. *)
type hook = {
  on_start : id -> Sim.Engine.t -> unit;
  on_finish : id -> Sim.Engine.t -> unit;
}

(* Span storage, the ambient parent, and the installed hook are all
   domain-local: a domain's runs record into their own table, so span
   ids and parentage never depend on what other domains are doing. *)
type state = {
  mutable next_id : int;
  by_id : (id, span) Hashtbl.t;
  mutable rev_order : span list;
  mutable ambient_span : id option;
  mutable hook : hook option;
}

let key =
  Domain.DLS.new_key (fun () ->
      {
        next_id = 0;
        by_id = Hashtbl.create 64;
        rev_order = [];
        ambient_span = None;
        hook = None;
      })

let state () = Domain.DLS.get key

let set_ambient v = (state ()).ambient_span <- v
let ambient () = (state ()).ambient_span
let set_hook h = (state ()).hook <- h

let record name parent start_at stop_at =
  let st = state () in
  st.next_id <- st.next_id + 1;
  let parent =
    match parent with
    | Some p when p <> none -> Some p
    | Some _ -> None
    | None -> st.ambient_span
  in
  let s = { sid = st.next_id; name; parent; start_at; stop_at } in
  Hashtbl.replace st.by_id s.sid s;
  st.rev_order <- s :: st.rev_order;
  s.sid

let start ?parent eng name =
  if not (Gate.on ()) then none
  else begin
    let sid = record name parent (Sim.Engine.now eng) None in
    (match (state ()).hook with Some h -> h.on_start sid eng | None -> ());
    sid
  end

let finish eng sid =
  let st = state () in
  match Hashtbl.find_opt st.by_id sid with
  | Some s when s.stop_at = None ->
      s.stop_at <- Some (Sim.Engine.now eng);
      (match st.hook with Some h -> h.on_finish sid eng | None -> ())
  | Some _ | None -> ()

let add ?parent eng name ~start_at ~stop_at =
  if not (Gate.on ()) then none
  else begin
    let sid = record name parent start_at (Some stop_at) in
    (match (state ()).hook with
    | Some h ->
        h.on_start sid eng;
        h.on_finish sid eng
    | None -> ());
    sid
  end

let spans () = List.rev (state ()).rev_order
let find ~name = List.filter (fun s -> String.equal s.name name) (spans ())
let children sid = List.filter (fun s -> s.parent = Some sid) (spans ())

let roots () =
  let st = state () in
  List.filter
    (fun s ->
      match s.parent with
      | None -> true
      | Some p -> not (Hashtbl.mem st.by_id p))
    (spans ())

let clear () =
  let st = state () in
  Hashtbl.reset st.by_id;
  st.rev_order <- [];
  st.next_id <- 0;
  st.ambient_span <- None

let to_jsonl buf =
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":%d,\"parent\":%s,\"name\":\"%s\",\"start_ns\":%d,\"stop_ns\":%s,\"dur_ns\":%s}\n"
           s.sid
           (match s.parent with Some p -> string_of_int p | None -> "null")
           (Event.json_escape s.name)
           s.start_at
           (match s.stop_at with Some t -> string_of_int t | None -> "null")
           (match s.stop_at with
           | Some t -> string_of_int (Sim.Time.diff t s.start_at)
           | None -> "null")))
    (spans ())

let pp_tree fmt () =
  let rec render indent s =
    (match s.stop_at with
    | Some stop ->
        Format.fprintf fmt "%s%s  [%a → %a]  (%a)@." indent s.name Sim.Time.pp
          s.start_at Sim.Time.pp stop Sim.Time.pp_span
          (Sim.Time.diff stop s.start_at)
    | None ->
        Format.fprintf fmt "%s%s  [%a → …]  (open)@." indent s.name Sim.Time.pp
          s.start_at);
    List.iter (render (indent ^ "  ")) (children s.sid)
  in
  List.iter (render "") (roots ())
