type id = int

let none = -1

type span = {
  sid : id;
  name : string;
  parent : id option;
  start_at : Sim.Time.t;
  mutable stop_at : Sim.Time.t option;
}

let next_id = ref 0
let by_id : (id, span) Hashtbl.t = Hashtbl.create 64
let rev_order : span list ref = ref []
let ambient_span = ref None

let set_ambient v = ambient_span := v
let ambient () = !ambient_span

(* Lifecycle hook (Causal.Recorder installs itself here) to bind span
   boundaries to engine events: fired when a real span is recorded and
   when it finishes, with the engine whose clock stamped the boundary.
   Observation-only — the hook must not touch spans or telemetry. *)
type hook = {
  on_start : id -> Sim.Engine.t -> unit;
  on_finish : id -> Sim.Engine.t -> unit;
}

let hook : hook option ref = ref None
let set_hook h = hook := h

let record name parent start_at stop_at =
  incr next_id;
  let parent =
    match parent with
    | Some p when p <> none -> Some p
    | Some _ -> None
    | None -> !ambient_span
  in
  let s = { sid = !next_id; name; parent; start_at; stop_at } in
  Hashtbl.replace by_id s.sid s;
  rev_order := s :: !rev_order;
  s.sid

let start ?parent eng name =
  if not (Gate.on ()) then none
  else begin
    let sid = record name parent (Sim.Engine.now eng) None in
    (match !hook with Some h -> h.on_start sid eng | None -> ());
    sid
  end

let finish eng sid =
  match Hashtbl.find_opt by_id sid with
  | Some s when s.stop_at = None ->
      s.stop_at <- Some (Sim.Engine.now eng);
      (match !hook with Some h -> h.on_finish sid eng | None -> ())
  | Some _ | None -> ()

let add ?parent eng name ~start_at ~stop_at =
  if not (Gate.on ()) then none
  else begin
    let sid = record name parent start_at (Some stop_at) in
    (match !hook with
    | Some h ->
        h.on_start sid eng;
        h.on_finish sid eng
    | None -> ());
    sid
  end

let spans () = List.rev !rev_order
let find ~name = List.filter (fun s -> String.equal s.name name) (spans ())
let children sid = List.filter (fun s -> s.parent = Some sid) (spans ())

let roots () =
  List.filter
    (fun s ->
      match s.parent with
      | None -> true
      | Some p -> not (Hashtbl.mem by_id p))
    (spans ())

let clear () =
  Hashtbl.reset by_id;
  rev_order := [];
  next_id := 0;
  ambient_span := None

let to_jsonl buf =
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":%d,\"parent\":%s,\"name\":\"%s\",\"start_ns\":%d,\"stop_ns\":%s,\"dur_ns\":%s}\n"
           s.sid
           (match s.parent with Some p -> string_of_int p | None -> "null")
           (Event.json_escape s.name)
           s.start_at
           (match s.stop_at with Some t -> string_of_int t | None -> "null")
           (match s.stop_at with
           | Some t -> string_of_int (Sim.Time.diff t s.start_at)
           | None -> "null")))
    (spans ())

let pp_tree fmt () =
  let rec render indent s =
    (match s.stop_at with
    | Some stop ->
        Format.fprintf fmt "%s%s  [%a → %a]  (%a)@." indent s.name Sim.Time.pp
          s.start_at Sim.Time.pp stop Sim.Time.pp_span
          (Sim.Time.diff stop s.start_at)
    | None ->
        Format.fprintf fmt "%s%s  [%a → …]  (open)@." indent s.name Sim.Time.pp
          s.start_at);
    List.iter (render (indent ^ "  ")) (children s.sid)
  in
  List.iter (render "") (roots ())
