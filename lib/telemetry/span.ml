type id = int

let none = -1

type span = {
  sid : id;
  name : string;
  parent : id option;
  start_at : Sim.Time.t;
  mutable stop_at : Sim.Time.t option;
}

let next_id = ref 0
let by_id : (id, span) Hashtbl.t = Hashtbl.create 64
let rev_order : span list ref = ref []
let ambient_span = ref None

let set_ambient v = ambient_span := v
let ambient () = !ambient_span

let record name parent start_at stop_at =
  incr next_id;
  let parent =
    match parent with
    | Some p when p <> none -> Some p
    | Some _ -> None
    | None -> !ambient_span
  in
  let s = { sid = !next_id; name; parent; start_at; stop_at } in
  Hashtbl.replace by_id s.sid s;
  rev_order := s :: !rev_order;
  s.sid

let start ?parent eng name =
  if not (Gate.on ()) then none
  else record name parent (Sim.Engine.now eng) None

let finish eng sid =
  match Hashtbl.find_opt by_id sid with
  | Some s when s.stop_at = None -> s.stop_at <- Some (Sim.Engine.now eng)
  | Some _ | None -> ()

let add ?parent _eng name ~start_at ~stop_at =
  if not (Gate.on ()) then none
  else record name parent start_at (Some stop_at)

let spans () = List.rev !rev_order
let find ~name = List.filter (fun s -> String.equal s.name name) (spans ())
let children sid = List.filter (fun s -> s.parent = Some sid) (spans ())

let roots () =
  List.filter
    (fun s ->
      match s.parent with
      | None -> true
      | Some p -> not (Hashtbl.mem by_id p))
    (spans ())

let clear () =
  Hashtbl.reset by_id;
  rev_order := [];
  next_id := 0;
  ambient_span := None

let to_jsonl buf =
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":%d,\"parent\":%s,\"name\":\"%s\",\"start_ns\":%d,\"stop_ns\":%s,\"dur_ns\":%s}\n"
           s.sid
           (match s.parent with Some p -> string_of_int p | None -> "null")
           (Event.json_escape s.name)
           s.start_at
           (match s.stop_at with Some t -> string_of_int t | None -> "null")
           (match s.stop_at with
           | Some t -> string_of_int (Sim.Time.diff t s.start_at)
           | None -> "null")))
    (spans ())

let pp_tree fmt () =
  let rec render indent s =
    (match s.stop_at with
    | Some stop ->
        Format.fprintf fmt "%s%s  [%a → %a]  (%a)@." indent s.name Sim.Time.pp
          s.start_at Sim.Time.pp stop Sim.Time.pp_span
          (Sim.Time.diff stop s.start_at)
    | None ->
        Format.fprintf fmt "%s%s  [%a → …]  (open)@." indent s.name Sim.Time.pp
          s.start_at);
    List.iter (render (indent ^ "  ")) (children s.sid)
  in
  List.iter (render "") (roots ())
