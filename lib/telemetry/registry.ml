type counter = { cname : string; mutable c : int }

(* The value lives in a one-slot float array, not a [mutable g : float]
   field: in a mixed string/float record the float field is boxed, so
   every [set] on a hot path (netfilter queue depth, ring high-water
   marks) allocated a fresh box. Float arrays store unboxed, and
   storing [float_of_int v] into one compiles without boxing either. *)
type gauge = { gname : string; gcell : float array }

(* Bucket 0 holds non-positive observations; bucket i >= 1 covers
   [2^(min_e+i-2), 2^(min_e+i-1)), i.e. has exclusive upper bound
   2^(min_e+i-1). min_e = -30 puts the finest bound at ~1 ns when
   observations are in seconds. *)
let min_e = -30
let max_e = 33
let nbuckets = max_e - min_e + 2

type histogram = {
  hname : string;
  counts : int array;
  mutable n : int;
  mutable sum : float;
  (* Observed extremes, so quantile q=0 / q=1 report real values rather
     than bucket edges. NaN while empty. *)
  mutable hmin : float;
  mutable hmax : float;
}

type metric =
  | Counter of string * counter
  | Gauge of string * gauge
  | Histogram of string * histogram

let metric_name = function
  | Counter (n, _) | Gauge (n, _) | Histogram (n, _) -> n

(* Registrations are domain-local: each domain of a parallel campaign
   grows its own registry from scratch, so two domains creating
   "tensor.failovers" concurrently each get a private cell instead of
   racing on one table. Within a domain the old global behaviour is
   unchanged (idempotent creation by name, registration order kept). *)
type state = {
  by_name : (string, metric) Hashtbl.t;
  mutable rev_order : metric list;
}

let key =
  Domain.DLS.new_key (fun () ->
      { by_name = Hashtbl.create 64; rev_order = [] })

let state () = Domain.DLS.get key

let register name m =
  let st = state () in
  Hashtbl.replace st.by_name name m;
  st.rev_order <- m :: st.rev_order

let kind_error name =
  invalid_arg
    (Printf.sprintf "Telemetry.Registry: %S already registered as another kind"
       name)

let counter name =
  match Hashtbl.find_opt (state ()).by_name name with
  | Some (Counter (_, c)) -> c
  | Some _ -> kind_error name
  | None ->
      let c = { cname = name; c = 0 } in
      register name (Counter (name, c));
      c

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c

let gauge name =
  match Hashtbl.find_opt (state ()).by_name name with
  | Some (Gauge (_, g)) -> g
  | Some _ -> kind_error name
  | None ->
      let g = { gname = name; gcell = [| 0.0 |] } in
      register name (Gauge (name, g));
      g

let set g v = g.gcell.(0) <- v
let set_max g v = if v > g.gcell.(0) then g.gcell.(0) <- v
let set_int g v = g.gcell.(0) <- float_of_int v

let set_max_int g v =
  let v = float_of_int v in
  if v > g.gcell.(0) then g.gcell.(0) <- v

let gauge_value g = g.gcell.(0)

let histogram name =
  match Hashtbl.find_opt (state ()).by_name name with
  | Some (Histogram (_, h)) -> h
  | Some _ -> kind_error name
  | None ->
      let h =
        {
          hname = name;
          counts = Array.make nbuckets 0;
          n = 0;
          sum = 0.0;
          hmin = Float.nan;
          hmax = Float.nan;
        }
      in
      register name (Histogram (name, h));
      h

let bucket_index v =
  if v <= 0.0 || Float.is_nan v then 0
  else
    let _, e = Float.frexp v in
    (* v in [2^(e-1), 2^e) *)
    let e = max min_e (min max_e e) in
    e - min_e + 1

let bucket_bound i =
  if i = 0 then 0.0 else Float.ldexp 1.0 (min_e + i - 1)

let observe h v =
  h.counts.(bucket_index v) <- h.counts.(bucket_index v) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if not (v >= h.hmin) then h.hmin <- v;
  if not (v <= h.hmax) then h.hmax <- v

let hist_count h = h.n
let hist_sum h = h.sum
let hist_min h = h.hmin
let hist_max h = h.hmax

let quantile h q =
  if h.n = 0 || Float.is_nan q then Float.nan
  else if q <= 0.0 then h.hmin
  else if q >= 1.0 then h.hmax
  else begin
    let target = q *. float_of_int h.n in
    let i = ref 0 and before = ref 0 in
    while
      !i < nbuckets - 1
      && float_of_int (!before + h.counts.(!i)) < target
    do
      before := !before + h.counts.(!i);
      i := !i + 1
    done;
    let i = !i in
    (* Interpolate within bucket [lo, hi) by rank; the observed extremes
       clamp the edge buckets to real values. *)
    let lo = if i = 0 then Float.min h.hmin 0.0 else bucket_bound (i - 1) in
    let hi = bucket_bound i in
    let frac =
      (target -. float_of_int !before) /. float_of_int h.counts.(i)
    in
    let v = lo +. (frac *. (hi -. lo)) in
    Float.max h.hmin (Float.min h.hmax v)
  end

let buckets h =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.counts.(i) > 0 then acc := (bucket_bound i, h.counts.(i)) :: !acc
  done;
  !acc

let all () = List.rev (state ()).rev_order

let reset_values () =
  List.iter
    (function
      | Counter (_, c) -> c.c <- 0
      | Gauge (_, g) -> g.gcell.(0) <- 0.0
      | Histogram (_, h) ->
          Array.fill h.counts 0 nbuckets 0;
          h.n <- 0;
          h.sum <- 0.0;
          h.hmin <- Float.nan;
          h.hmax <- Float.nan)
    (all ())

let float_str f = Printf.sprintf "%.9g" f

let to_csv () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "name,kind,count,sum\n";
  List.iter
    (fun m ->
      let line =
        match m with
        | Counter (n, c) -> Printf.sprintf "%s,counter,%d,\n" n c.c
        | Gauge (n, g) ->
            Printf.sprintf "%s,gauge,,%s\n" n (float_str g.gcell.(0))
        | Histogram (n, h) ->
            Printf.sprintf "%s,histogram,%d,%s\n" n h.n (float_str h.sum)
      in
      Buffer.add_string buf line)
    (all ());
  Buffer.contents buf

let to_json () =
  let metric_json = function
    | Counter (n, c) ->
        Printf.sprintf "{\"name\":\"%s\",\"kind\":\"counter\",\"value\":%d}"
          (Event.json_escape n) c.c
    | Gauge (n, g) ->
        Printf.sprintf "{\"name\":\"%s\",\"kind\":\"gauge\",\"value\":%s}"
          (Event.json_escape n) (float_str g.gcell.(0))
    | Histogram (n, h) ->
        Printf.sprintf
          "{\"name\":\"%s\",\"kind\":\"histogram\",\"count\":%d,\"sum\":%s,\"buckets\":[%s]}"
          (Event.json_escape n) h.n (float_str h.sum)
          (String.concat ","
             (List.map
                (fun (ub, c) -> Printf.sprintf "[%s,%d]" (float_str ub) c)
                (buckets h)))
  in
  "{\"metrics\":["
  ^ String.concat "," (List.map metric_json (all ()))
  ^ "]}"
