(* The recording gate is domain-local: each domain in a parallel
   campaign turns telemetry on and off around its own runs without
   racing the others, and a fresh domain starts gated off exactly like
   a fresh process. *)
let key = Domain.DLS.new_key (fun () -> ref false)

let on () = !(Domain.DLS.get key)
let set flag = Domain.DLS.get key := flag
