let enabled = ref false
let on () = !enabled
let set flag = enabled := flag
