(** The global telemetry switch.

    Event recording and span collection are gated on one process-wide
    flag so that instrumented hot paths cost a single load-and-branch
    when telemetry is off (the default). Metrics registry updates are
    not gated: a counter bump is as cheap as the branch would be, and
    always-on counters match the pre-existing per-connection stats.

    Call sites that must allocate to build an event should guard with
    [if Gate.on () then ...] so the disabled path allocates nothing. *)

val on : unit -> bool
(** Whether telemetry recording is enabled. Initially [false]. *)

val set : bool -> unit
(** Enables or disables recording globally. *)
