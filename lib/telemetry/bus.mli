(** The process-wide structured-event bus.

    One bounded ring buffer per {!Event.category}: when a category's
    buffer is full the oldest entry is overwritten (and counted in
    {!dropped}), so a long run can keep telemetry on without unbounded
    memory. A global sequence number totally orders entries across
    categories, including events emitted at the same simulated instant
    (emission order wins, matching the engine's FIFO tie-break).

    Recording is gated on {!Gate}; the [?legacy] mirror is NOT gated:
    an event carrying a legacy trace always lands in that trace, so
    pre-existing [Sim.Trace] consumers behave identically whether
    telemetry is on, off, or never touched. *)

type entry = { seq : int; at : Sim.Time.t; event : Event.t }

val emit : ?legacy:Sim.Trace.t -> Sim.Engine.t -> Event.t -> unit
(** Records [event] at the engine's current instant (when {!Gate.on})
    and mirrors its {!Event.legacy} rendering into [legacy] (always). *)

val events : ?category:Event.category -> unit -> entry list
(** Buffered entries, oldest first (globally ordered by [seq]). *)

(** {1 Live subscribers}

    Callbacks invoked synchronously from {!emit}, after the entry is
    buffered, so a subscriber observes entries in global-sequence order
    interleaved across categories. Subscribers only fire while
    {!Gate.on}; they survive {!clear} (a new run re-observes from a
    fresh [seq]). A callback must not raise. *)

type sub

val subscribe : ?category:Event.category -> (entry -> unit) -> sub
(** [subscribe ~category f] calls [f] on every new entry of [category];
    omitting [category] subscribes to the firehose (all categories). *)

val unsubscribe : sub -> unit
(** Idempotent. *)

val subscriber_count : unit -> int
(** Number of live subscriptions (for tests/diagnostics). *)

val total : Event.category -> int
(** Events ever emitted to the category, including overwritten ones. *)

val dropped : Event.category -> int
(** Events lost to ring-buffer overwrite. *)

val dropped_total : unit -> int
(** Events lost to overwrite across all categories since the last
    {!clear}. Overflow is also observable in the metrics registry: the
    [telemetry.bus_dropped] counter (survives {!clear}) and per-category
    [telemetry.ring_hwm.<cat>] high-water occupancy gauges. *)

val set_capacity : int -> unit
(** Per-category ring capacity (default 8192). Clears all buffers and
    forgets any {!set_category_capacity} overrides. *)

val set_category_capacity : Event.category -> int -> unit
(** Overrides the ring capacity for one category (trace-heavy runs size
    up only the chatty categories). Clears that category's buffer; other
    categories are untouched. *)

val category_capacity : Event.category -> int
(** The effective ring capacity for [category]: its override if set,
    else the global capacity. *)

val clear : unit -> unit
(** Drops all buffered entries and resets counters. *)

val pp_entry : Format.formatter -> entry -> unit

val to_jsonl : Buffer.t -> unit
(** Appends one JSON object per buffered entry:
    [{"seq":..,"t_ns":..,"cat":..,"ev":..,"f":{..}}]. *)
