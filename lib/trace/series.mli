(** Simulated-time metric series.

    A windowed sampler that snapshots the metrics registry every [N]
    simulated seconds into JSONL rows — convergence curves for fig6 /
    scale experiments, instead of end-of-run totals.

    Implemented as a firehose {!Telemetry.Bus} subscriber (so it only
    observes while telemetry is enabled and never schedules events —
    an [Engine.every] timer would perturb event counts and replay
    digests, and keep [Engine.run] from terminating). When an observed
    entry crosses one or more window boundaries, one row per owed
    boundary is emitted, stamped with the {e boundary} time; long quiet
    gaps emit a single stale row and skip the empty windows (counted in
    {!skipped_windows}). An entry whose simulated time runs backwards
    starts a new [run] (experiments build fresh engines); {!detach}
    flushes a final row so sub-window runs still produce data. *)

type t

val default_interval : Sim.Time.span
(** 1 simulated second. *)

val attach : ?interval:Sim.Time.span -> ?select:(string -> bool) -> unit -> t
(** Subscribes a sampler to the bus firehose. [select] filters metric
    names (default: keep all). Raises [Invalid_argument] on a
    non-positive [interval]. *)

val detach : t -> unit
(** Unsubscribes and flushes a final partial-window row if any entries
    were observed since the last boundary. The buffer stays readable. *)

val sample_count : t -> int
val skipped_windows : t -> int

val to_jsonl : t -> string
(** One row per sample:
    [{"run":..,"t_ns":..,"metrics":{"name":value,..}}] — counters as
    ints, gauges as floats, histograms as [name.count] / [name.sum]. *)

val write : t -> string -> unit
(** [write t path] writes {!to_jsonl} to [path]. *)
