(** Perfetto / Chrome [trace_event] JSON export on simulated time.

    Renders the recorded event DAG for [ui.perfetto.dev] (or
    [chrome://tracing]): one process per engine track with one thread
    per subsystem (label prefix before the first ['.']), each dispatched
    event as a thread-scoped instant carrying its id, causal parent and
    queue dwell in [args]. Telemetry spans are overlaid as async
    ([ph:"b"]/[ph:"e"]) events on their own process, and an optional
    {!Critical.t} is rendered as a process of complete ([ph:"X"]) slices
    — one per segment, laid end to end across the span window.

    Timestamps are the simulated clock converted to microseconds
    (fractional, the format allows floats). Wall time never appears. *)

val export : ?critical:Critical.t -> unit -> string
(** The trace as a JSON object
    [{"displayTimeUnit":"ms","traceEvents":[...]}]. *)

val write : ?critical:Critical.t -> string -> unit
(** [write path] writes {!export} to [path]. *)
