let esc = Telemetry.Event.json_escape

(* ns -> trace_event microseconds (floats allowed by the format). *)
let ts ns = Printf.sprintf "%.3f" (Sim.Time.to_us_f ns)

let subsystem label =
  match String.index_opt label '.' with
  | Some i -> String.sub label 0 i
  | None -> label

(* pid layout: engine tracks are pids 1..n (first-seen order), the span
   overlay is pid n+1, the critical-path overlay pid n+2. Perfetto
   renders each pid as a process group, so every simulated node /
   subsystem gets its own track and the spans sit alongside. *)
let export ?critical () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '\n';
    Buffer.add_string buf line
  in
  let ntracks = Recorder.track_count () in
  for track = 0 to ntracks - 1 do
    emit
      (Printf.sprintf
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"engine-%d\"}}"
         (track + 1) track)
  done;
  let span_pid = ntracks + 1 in
  let crit_pid = ntracks + 2 in
  (* Thread ids: one per (track, subsystem), assigned in first-seen
     execution order. The table is only ever point-looked-up; metadata
     lines are emitted at assignment time, so no traversal is needed. *)
  let tids : (int * string, int) Hashtbl.t = Hashtbl.create 64 in
  let tid_counters = Array.make (max ntracks 1) 0 in
  let tid_of track label =
    let sub = subsystem label in
    match Hashtbl.find_opt tids (track, sub) with
    | Some t -> t
    | None ->
        tid_counters.(track) <- tid_counters.(track) + 1;
        let t = tid_counters.(track) in
        Hashtbl.replace tids (track, sub) t;
        emit
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             (track + 1) t (esc sub));
        t
  in
  Recorder.iter (fun n ->
      let tid = tid_of n.track n.label in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"s\":\"t\",\"args\":{\"id\":%d,\"parent\":%d,\"dwell_us\":%s}}"
           (esc n.label) (ts n.exec_at) (n.track + 1) tid n.id n.parent
           (ts (Sim.Time.diff n.exec_at n.sched_at))));
  let any_span = ref false in
  List.iter
    (fun (s : Telemetry.Span.span) ->
      any_span := true;
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"b\",\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":1}"
           (esc s.name) s.sid (ts s.start_at) span_pid);
      match s.stop_at with
      | Some stop ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"e\",\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":1}"
               (esc s.name) s.sid (ts stop) span_pid)
      | None -> ())
    (Telemetry.Span.spans ());
  if !any_span then
    emit
      (Printf.sprintf
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"spans\"}}"
         span_pid);
  (match critical with
  | None -> ()
  | Some (c : Critical.t) ->
      emit
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"critical-path (%s)\"}}"
           crit_pid (esc c.span_name));
      ignore
        (List.fold_left
           (fun at (seg : Critical.segment) ->
             emit
               (Printf.sprintf
                  "{\"name\":\"%s\",\"cat\":\"critical\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":1,\"args\":{\"events\":%d}}"
                  (esc seg.label) (ts at) (ts seg.dur) crit_pid seg.events);
             Sim.Time.add at seg.dur)
           c.start_at c.segments));
  Buffer.add_string buf "\n]}";
  Buffer.contents buf

let write ?critical path =
  let oc = open_out path in
  output_string oc (export ?critical ());
  close_out oc
