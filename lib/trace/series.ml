let default_interval = Sim.Time.sec 1

type t = {
  interval : Sim.Time.span;
  select : string -> bool;
  buf : Buffer.t;
  mutable sub : Telemetry.Bus.sub option;
  mutable run : int;
  mutable next : Sim.Time.t; (* next window boundary to sample at *)
  mutable last_at : Sim.Time.t;
  mutable samples : int;
  mutable skipped : int;
  mutable dirty : bool; (* entries observed since the last sample *)
}

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let sample_row t ~at =
  let buf = t.buf in
  Buffer.add_string buf
    (Printf.sprintf "{\"run\":%d,\"t_ns\":%d,\"metrics\":{" t.run at);
  let first = ref true in
  let field name value =
    if t.select name then begin
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%s" (Telemetry.Event.json_escape name) value)
    end
  in
  List.iter
    (fun m ->
      match m with
      | Telemetry.Registry.Counter (name, c) ->
          field name (string_of_int (Telemetry.Registry.value c))
      | Telemetry.Registry.Gauge (name, g) ->
          field name (json_float (Telemetry.Registry.gauge_value g))
      | Telemetry.Registry.Histogram (name, h) ->
          field (name ^ ".count")
            (string_of_int (Telemetry.Registry.hist_count h));
          field (name ^ ".sum") (json_float (Telemetry.Registry.hist_sum h)))
    (Telemetry.Registry.all ());
  Buffer.add_string buf "}}\n";
  t.samples <- t.samples + 1;
  t.dirty <- false

(* The sampler is deliberately a bus subscriber, not an [Engine.every]
   timer: a timer would schedule real events — changing event counts,
   perturbing replay digests and keeping [Engine.run] alive forever.
   Sampling on observed telemetry entries costs nothing when idle and
   stays strictly observation-only; the trade is that a window with no
   telemetry at all is sampled late (at the next entry), which the
   boundary timestamps make explicit. *)
let on_entry t (e : Telemetry.Bus.entry) =
  if e.at < t.last_at then begin
    (* Simulated time went backwards: a fresh engine / next run. *)
    if t.dirty then sample_row t ~at:t.last_at;
    t.run <- t.run + 1;
    t.next <- t.interval;
    t.last_at <- Sim.Time.zero
  end;
  (* A pathological quiet gap could owe thousands of empty windows;
     emit one row for the stale boundary, then jump to the current
     window and count the rest as skipped. *)
  let owed = (e.at - t.next) / t.interval in
  if owed > 2 then begin
    sample_row t ~at:t.next;
    t.skipped <- t.skipped + (owed - 1);
    t.next <- Sim.Time.add t.next (owed * t.interval)
  end;
  while e.at >= t.next do
    sample_row t ~at:t.next;
    t.next <- Sim.Time.add t.next t.interval
  done;
  t.last_at <- e.at;
  t.dirty <- true

let attach ?(interval = default_interval) ?(select = fun _ -> true) () =
  if interval <= 0 then invalid_arg "Series.attach: interval must be positive";
  let t =
    {
      interval;
      select;
      buf = Buffer.create 4096;
      sub = None;
      run = 0;
      next = interval;
      last_at = Sim.Time.zero;
      samples = 0;
      skipped = 0;
      dirty = false;
    }
  in
  t.sub <- Some (Telemetry.Bus.subscribe (fun e -> on_entry t e));
  t

let detach t =
  (match t.sub with
  | Some s ->
      Telemetry.Bus.unsubscribe s;
      t.sub <- None
  | None -> ());
  (* Final flush: a run shorter than one window still yields a row. *)
  if t.dirty then sample_row t ~at:t.last_at

let sample_count t = t.samples
let skipped_windows t = t.skipped
let to_jsonl t = Buffer.contents t.buf

let write t path =
  let oc = open_out path in
  output_string oc (to_jsonl t);
  close_out oc
