type segment = {
  label : string;
  dur : Sim.Time.span;
  events : int; (* 0 for synthetic segments like "(untraced)" *)
}

type t = {
  span_name : string;
  start_at : Sim.Time.t;
  stop_at : Sim.Time.t;
  total : Sim.Time.span;
  segments : segment list; (* in time order, durations sum to [total] *)
  events : int; (* chain length (recorded events on the path) *)
}

(* Label match: exact, or [pat] is a dotted prefix ("tcp" matches
   "tcp.rto" but not "tcpdump"). *)
let label_matches pat l =
  String.equal pat l
  || (String.length l > String.length pat
     && String.sub l 0 (String.length pat) = pat
     && l.[String.length pat] = '.')

(* The last finished span with this name: recovery queries ask about the
   run's final failover, and re-runs append. *)
let target_span name =
  let finished =
    List.filter
      (fun (s : Telemetry.Span.span) -> s.stop_at <> None)
      (Telemetry.Span.find ~name)
  in
  match List.rev finished with s :: _ -> Some s | [] -> None

(* Endpoint: the event whose execution closed the span (via the span
   finish binding), or — when the span was closed from harness code or
   the binding's event fell off the recorder cap — the last recorded
   event executed within the span window. [to_label] overrides both:
   the last in-window event whose label matches. *)
let endpoint ~to_label ~t0 ~t1 (span : Telemetry.Span.span) =
  let in_window (n : Recorder.node) = n.exec_at >= t0 && n.exec_at <= t1 in
  let last_matching pred =
    let r = ref None in
    let i = ref (Recorder.node_count () - 1) in
    while !r = None && !i >= 0 do
      let n = Recorder.get !i in
      if in_window n && pred n then r := Some n;
      decr i
    done;
    !r
  in
  match to_label with
  | Some pat -> last_matching (fun n -> label_matches pat n.label)
  | None -> (
      match Recorder.span_finish_binding span.sid with
      | Some (id, track) -> (
          match Recorder.find ~track ~id with
          | Some n when in_window n -> Some n
          | Some _ | None -> last_matching (fun _ -> true))
      | None -> last_matching (fun _ -> true))

(* Walk causal parents back from the endpoint, staying on the endpoint's
   track, until the chain leaves the span window, reaches an external
   root, or hits [from_label]. Oldest first. *)
let chain_of ~from_label ~t0 (endp : Recorder.node) =
  let rec up acc (n : Recorder.node) =
    let acc = n :: acc in
    let stop_here =
      match from_label with
      | Some pat -> label_matches pat n.label
      | None -> false
    in
    if stop_here || n.parent < 0 then acc
    else
      match Recorder.find ~track:n.track ~id:n.parent with
      | Some p when p.exec_at >= t0 -> up acc p
      | Some _ | None -> acc
  in
  up [] endp

let segments_of ~t0 ~t1 chain =
  (* Each chain node contributes a hop: time from the previous node's
     execution (or the span start, for the first) to its own. The hops
     telescope, so together with the "(untraced)" tail they sum exactly
     to the span duration. *)
  let hops =
    List.rev
      (snd
         (List.fold_left
            (fun (prev_at, acc) (n : Recorder.node) ->
              (n.exec_at, (n.label, Sim.Time.diff n.exec_at prev_at) :: acc))
            (t0, []) chain))
  in
  let tail =
    match List.rev chain with
    | last :: _ when last.Recorder.exec_at < t1 ->
        [ ("(untraced)", Sim.Time.diff t1 last.Recorder.exec_at) ]
    | _ -> []
  in
  (* Merge consecutive same-label hops into segments. *)
  let merged =
    List.fold_left
      (fun acc (label, dur) ->
        match acc with
        | { label = l; dur = d; events = e } :: rest when String.equal l label
          ->
            { label; dur = d + dur; events = e + 1 } :: rest
        | _ -> { label; dur; events = 1 } :: acc)
      [] hops
  in
  let merged =
    match tail with
    | [ (label, dur) ] -> { label; dur; events = 0 } :: merged
    | _ -> merged
  in
  List.rev merged

let of_span ?from_label ?to_label ~name () =
  match target_span name with
  | None -> Error (Printf.sprintf "no finished span named %S" name)
  | Some span -> (
      let t0 = span.start_at in
      let t1 = match span.stop_at with Some t -> t | None -> assert false in
      match endpoint ~to_label ~t0 ~t1 span with
      | None ->
          Error
            (Printf.sprintf
               "no traced events inside span %S — was the recorder attached \
                during the run?"
               name)
      | Some endp ->
          let chain = chain_of ~from_label ~t0 endp in
          Ok
            {
              span_name = name;
              start_at = t0;
              stop_at = t1;
              total = Sim.Time.diff t1 t0;
              segments = segments_of ~t0 ~t1 chain;
              events = List.length chain;
            })

let segment_sum t =
  List.fold_left (fun acc s -> acc + s.dur) 0 t.segments

let to_text t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Format.asprintf "critical path: %s  (%a, %d events on path)@." t.span_name
       Sim.Time.pp_span t.total t.events);
  Buffer.add_string buf
    (Format.asprintf "  window: %a -> %a@." Sim.Time.pp t.start_at Sim.Time.pp
       t.stop_at);
  let total_f = Sim.Time.to_sec_f t.total in
  List.iter
    (fun s ->
      let frac =
        if total_f > 0.0 then 100.0 *. Sim.Time.to_sec_f s.dur /. total_f
        else 0.0
      in
      let dur = Format.asprintf "%a" Sim.Time.pp_span s.dur in
      Buffer.add_string buf
        (Format.asprintf "  %-24s %12s  %5.1f%%  %6d ev@." s.label dur frac
           s.events))
    t.segments;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"span\":\"%s\",\"start_ns\":%d,\"stop_ns\":%d,\"total_ns\":%d,\"events\":%d,\"segments\":["
       (Telemetry.Event.json_escape t.span_name)
       t.start_at t.stop_at t.total t.events);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"label\":\"%s\",\"dur_ns\":%d,\"events\":%d}"
           (Telemetry.Event.json_escape s.label)
           s.dur s.events))
    t.segments;
  Buffer.add_string buf "]}";
  Buffer.contents buf
