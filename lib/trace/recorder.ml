type node = {
  id : int;
  parent : int; (* -1: scheduled from outside event dispatch *)
  track : int;
  label : string;
  sched_at : Sim.Time.t;
  exec_at : Sim.Time.t;
}

let default_limit = 2_000_000

(* Nodes in execution order. Grown manually ([||] until the first
   record): the array element type needs a seed value, so allocation is
   deferred to the first push, like the engine heap. *)
type store = { mutable arr : node array; mutable len : int }

(* Recorder state is domain-local, matching the engine trace hook it
   feeds on: attaching on one domain records the event DAG of that
   domain's engines only, so parallel campaign workers never interleave
   their traces. *)
type state = {
  store : store;
  mutable node_limit : int;
  mutable dropped_count : int;
  (* (track, id) -> index into [store.arr]. Only point lookups — never
     traversed, so determinism is not at the mercy of hash order. *)
  index : (int * int, int) Hashtbl.t;
  (* Engines seen so far, in first-seen order; list index = track id.
     Compared physically: engines have no identity beyond themselves. *)
  mutable engines : Sim.Engine.t list;
  (* Span-boundary bindings: span id -> (event id, track) of the event
     executing when the boundary was stamped. [-1] event ids (boundaries
     stamped from harness code, outside dispatch) are recorded as
     absent: there is no event to anchor to. *)
  span_starts : (Telemetry.Span.id, int * int) Hashtbl.t;
  span_finishes : (Telemetry.Span.id, int * int) Hashtbl.t;
}

let key =
  Domain.DLS.new_key (fun () ->
      {
        store = { arr = [||]; len = 0 };
        node_limit = default_limit;
        dropped_count = 0;
        index = Hashtbl.create 4096;
        engines = [];
        span_starts = Hashtbl.create 64;
        span_finishes = Hashtbl.create 64;
      })

let state () = Domain.DLS.get key

let track_count () = List.length (state ()).engines

let track_of_engine eng =
  let rec find i = function
    | [] -> None
    | e :: rest -> if e == eng then Some i else find (i + 1) rest
  in
  find 0 (state ()).engines

let register_track eng =
  match track_of_engine eng with
  | Some i -> i
  | None ->
      let st = state () in
      let i = List.length st.engines in
      st.engines <- st.engines @ [ eng ];
      i

let span_start_binding sid = Hashtbl.find_opt (state ()).span_starts sid
let span_finish_binding sid = Hashtbl.find_opt (state ()).span_finishes sid

let reset () =
  let st = state () in
  st.store.arr <- [||];
  st.store.len <- 0;
  st.dropped_count <- 0;
  Hashtbl.reset st.index;
  Hashtbl.reset st.span_starts;
  Hashtbl.reset st.span_finishes;
  st.engines <- []

let push store n =
  if store.len = Array.length store.arr then begin
    let cap = Array.length store.arr in
    let arr = Array.make (if cap = 0 then 1024 else 2 * cap) n in
    Array.blit store.arr 0 arr 0 store.len;
    store.arr <- arr
  end;
  store.arr.(store.len) <- n;
  store.len <- store.len + 1

let on_dispatch ~eng ~id ~parent ~label ~sched_at ~exec_at =
  let st = state () in
  if st.store.len >= st.node_limit then
    st.dropped_count <- st.dropped_count + 1
  else begin
    let track = register_track eng in
    Hashtbl.replace st.index (track, id) st.store.len;
    push st.store { id; parent; track; label; sched_at; exec_at }
  end

let bind tbl sid eng =
  let ev = Sim.Engine.current_event_id eng in
  if ev >= 0 then Hashtbl.replace tbl sid (ev, register_track eng)

let span_hook =
  {
    Telemetry.Span.on_start =
      (fun sid eng -> bind (state ()).span_starts sid eng);
    on_finish = (fun sid eng -> bind (state ()).span_finishes sid eng);
  }

let enabled () = Sim.Engine.tracing ()

let attach ?(limit = default_limit) () =
  if limit <= 0 then invalid_arg "Recorder.attach: limit must be positive";
  (state ()).node_limit <- limit;
  Sim.Engine.set_trace_hook (Some on_dispatch);
  Telemetry.Span.set_hook (Some span_hook)

let detach () =
  Sim.Engine.set_trace_hook None;
  Telemetry.Span.set_hook None

let node_count () = (state ()).store.len
let dropped () = (state ()).dropped_count
let get i = (state ()).store.arr.(i)

let find ~track ~id =
  let st = state () in
  match Hashtbl.find_opt st.index (track, id) with
  | Some i -> Some st.store.arr.(i)
  | None -> None

let iter f =
  let store = (state ()).store in
  for i = 0 to store.len - 1 do
    f store.arr.(i)
  done

let nodes () =
  let store = (state ()).store in
  Array.init store.len (fun i -> store.arr.(i))
