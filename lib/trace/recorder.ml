type node = {
  id : int;
  parent : int; (* -1: scheduled from outside event dispatch *)
  track : int;
  label : string;
  sched_at : Sim.Time.t;
  exec_at : Sim.Time.t;
}

let default_limit = 2_000_000

(* Nodes in execution order. Grown manually ([||] until the first
   record): the array element type needs a seed value, so allocation is
   deferred to the first push, like the engine heap. *)
type store = { mutable arr : node array; mutable len : int }

let store = { arr = [||]; len = 0 }
let node_limit = ref default_limit
let dropped_count = ref 0

(* (track, id) -> index into [store.arr]. Only point lookups — never
   traversed, so determinism is not at the mercy of hash order. *)
let index : (int * int, int) Hashtbl.t = Hashtbl.create 4096

(* Engines seen so far, in first-seen order; list index = track id.
   Compared physically: engines have no identity beyond themselves. *)
let engines : Sim.Engine.t list ref = ref []
let track_count () = List.length !engines

let track_of_engine eng =
  let rec find i = function
    | [] -> None
    | e :: rest -> if e == eng then Some i else find (i + 1) rest
  in
  find 0 !engines

let register_track eng =
  match track_of_engine eng with
  | Some i -> i
  | None ->
      let i = track_count () in
      engines := !engines @ [ eng ];
      i

(* Span-boundary bindings: span id -> (event id, track) of the event
   executing when the boundary was stamped. [-1] event ids (boundaries
   stamped from harness code, outside dispatch) are recorded as absent:
   there is no event to anchor to. *)
let span_starts : (Telemetry.Span.id, int * int) Hashtbl.t = Hashtbl.create 64
let span_finishes : (Telemetry.Span.id, int * int) Hashtbl.t = Hashtbl.create 64

let span_start_binding sid = Hashtbl.find_opt span_starts sid
let span_finish_binding sid = Hashtbl.find_opt span_finishes sid

let reset () =
  store.arr <- [||];
  store.len <- 0;
  dropped_count := 0;
  Hashtbl.reset index;
  Hashtbl.reset span_starts;
  Hashtbl.reset span_finishes;
  engines := []

let push n =
  if store.len = Array.length store.arr then begin
    let cap = Array.length store.arr in
    let arr = Array.make (if cap = 0 then 1024 else 2 * cap) n in
    Array.blit store.arr 0 arr 0 store.len;
    store.arr <- arr
  end;
  store.arr.(store.len) <- n;
  store.len <- store.len + 1

let on_dispatch ~eng ~id ~parent ~label ~sched_at ~exec_at =
  if store.len >= !node_limit then incr dropped_count
  else begin
    let track = register_track eng in
    Hashtbl.replace index (track, id) store.len;
    push { id; parent; track; label; sched_at; exec_at }
  end

let bind tbl sid eng =
  let ev = Sim.Engine.current_event_id eng in
  if ev >= 0 then Hashtbl.replace tbl sid (ev, register_track eng)

let span_hook =
  {
    Telemetry.Span.on_start = (fun sid eng -> bind span_starts sid eng);
    on_finish = (fun sid eng -> bind span_finishes sid eng);
  }

let enabled () = Sim.Engine.tracing ()

let attach ?(limit = default_limit) () =
  if limit <= 0 then invalid_arg "Recorder.attach: limit must be positive";
  node_limit := limit;
  Sim.Engine.set_trace_hook (Some on_dispatch);
  Telemetry.Span.set_hook (Some span_hook)

let detach () =
  Sim.Engine.set_trace_hook None;
  Telemetry.Span.set_hook None

let node_count () = store.len
let dropped () = !dropped_count
let get i = store.arr.(i)

let find ~track ~id =
  match Hashtbl.find_opt index (track, id) with
  | Some i -> Some store.arr.(i)
  | None -> None

let iter f =
  for i = 0 to store.len - 1 do
    f store.arr.(i)
  done

let nodes () = Array.init store.len (fun i -> store.arr.(i))
