(** Critical-path extraction over the recorded event DAG.

    Given a finished root span (e.g. [failover]), finds the causal chain
    of events that closed it: starting from the event that finished the
    span (known via the {!Recorder}'s span bindings), walk [caused_by]
    parents back to the fault-injection edge of the span window. The
    chain decomposes the span's duration into per-label {e segments} —
    consecutive same-label hops merged — which by construction {b sum
    exactly to the span duration}: each hop is the time from the
    previous event's execution to this one's, the first hop starts at
    the span start, and any gap between the last chain event and the
    span end is reported as an explicit ["(untraced)"] segment.

    This answers the Fig. 5a question precisely: not just how long BFD
    detection / replica catchup / TCP replay took as spans, but which
    handler chain bounded recovery and where its time went. *)

type segment = {
  label : string;  (** attribution label, or ["(untraced)"] *)
  dur : Sim.Time.span;
  events : int;  (** chain events merged into this segment (0: synthetic) *)
}

type t = {
  span_name : string;
  start_at : Sim.Time.t;
  stop_at : Sim.Time.t;
  total : Sim.Time.span;  (** [stop_at - start_at] *)
  segments : segment list;  (** time order; durations sum to [total] *)
  events : int;  (** recorded events on the critical path *)
}

val of_span :
  ?from_label:string ->
  ?to_label:string ->
  name:string ->
  unit ->
  (t, string) result
(** [of_span ~name ()] extracts the critical path of the last finished
    span named [name]. [?to_label] re-anchors the endpoint at the last
    in-window event whose label matches (exact or dotted-prefix match:
    ["tcp"] matches ["tcp.rto"]); [?from_label] truncates the parent
    walk at the first matching ancestor. Errors when no finished span of
    that name exists or no traced events fall inside its window. *)

val label_matches : string -> string -> bool
(** [label_matches pat l]: exact or dotted-prefix label match. *)

val segment_sum : t -> Sim.Time.span
(** Sum of segment durations — always equals [total]. *)

val to_text : t -> string
(** Human-readable table: label, duration, share, event count. *)

val to_json : t -> string
(** [{"span":..,"start_ns":..,"stop_ns":..,"total_ns":..,"events":..,
    "segments":[{"label":..,"dur_ns":..,"events":..},..]}] *)
