(** The causal event recorder.

    Attaches to the engine's observation-only trace hook
    ([Sim.Engine.set_trace_hook]) and records every dispatched event as
    a DAG node: its id, causal parent (the event executing when it was
    scheduled, [-1] for events scheduled from harness code), attribution
    label, enqueue instant and execution instant. Engines are assigned
    {e track} numbers in first-seen order, so a multi-engine experiment
    keeps per-engine event ids unambiguous.

    It simultaneously attaches to [Telemetry.Span.set_hook] to bind span
    boundaries to the events that stamped them — the raw material for
    {!Critical} path extraction ("which event chain closed the failover
    span?").

    The recorder is strictly observation-only, like [Prof.Profiler]:
    attaching it must leave replay digests byte-identical. It never
    touches simulation state, telemetry, or engine RNGs. *)

type node = {
  id : int;  (** engine scheduling sequence number, unique per track *)
  parent : int;  (** causal parent id, [-1] when scheduled externally *)
  track : int;  (** engine index, first-seen order *)
  label : string;  (** cost-attribution label, inherited like the cost *)
  sched_at : Sim.Time.t;  (** enqueue instant *)
  exec_at : Sim.Time.t;  (** execution instant (dwell = exec - sched) *)
}

val default_limit : int
(** Default node-count cap (2M nodes ≈ a fig5a-scale run with room). *)

val attach : ?limit:int -> unit -> unit
(** Installs the engine trace hook and the span lifecycle hook.
    Recording stops (and {!dropped} counts) past [limit] nodes.
    Existing recorded state is kept — call {!reset} for a fresh DAG. *)

val detach : unit -> unit
(** Removes both hooks. Recorded state stays readable. *)

val enabled : unit -> bool
(** [true] while the engine trace hook is installed. *)

val reset : unit -> unit
(** Forgets all nodes, tracks, span bindings and the drop count. *)

val node_count : unit -> int
(** Recorded nodes (excludes dropped ones). *)

val dropped : unit -> int
(** Dispatches not recorded because the node cap was reached. *)

val get : int -> node
(** [get i] is the [i]-th node in execution order, [0 <= i < node_count ()]. *)

val iter : (node -> unit) -> unit
(** Iterates nodes in execution order. *)

val nodes : unit -> node array
(** A copy of all nodes in execution order (tests / small runs). *)

val find : track:int -> id:int -> node option
(** Point lookup by (track, event id). *)

val track_count : unit -> int

val track_of_engine : Sim.Engine.t -> int option
(** The track assigned to [eng], if it has dispatched any traced event
    (or stamped a span boundary) since the last {!reset}. *)

val span_start_binding : Telemetry.Span.id -> (int * int) option
(** [(event id, track)] of the event executing when the span started;
    [None] when the span started outside event dispatch. *)

val span_finish_binding : Telemetry.Span.id -> (int * int) option
(** [(event id, track)] of the event executing when the span finished. *)
