type capability =
  | Cap_route_refresh
  | Cap_four_octet_asn of int
  | Cap_graceful_restart of { restart_time : int; preserved_fwd : bool }
  | Cap_unknown of int * string

type open_msg = {
  version : int;
  asn : int;
  hold_time : int;
  router_id : Netsim.Addr.t;
  capabilities : capability list;
}

type update = {
  withdrawn : Netsim.Addr.prefix list;
  attrs : Attrs.t option;
  nlri : Netsim.Addr.prefix list;
}

type notification = { code : int; subcode : int; data : string }

type t =
  | Open of open_msg
  | Update of update
  | Notification of notification
  | Keepalive
  | Route_refresh of { afi : int; safi : int }

let end_of_rib = Update { withdrawn = []; attrs = None; nlri = [] }

let is_end_of_rib = function
  | Update { withdrawn = []; attrs = None; nlri = [] } -> true
  | _ -> false

let update_count = function
  | Update u -> List.length u.nlri + List.length u.withdrawn
  | Open _ | Notification _ | Keepalive | Route_refresh _ -> 0

let max_size = 4096
let header_size = 19
let as_trans = 23456

type error =
  | Bad_marker
  | Bad_length of int
  | Bad_type of int
  | Too_long of int
  | Malformed of string

let pp_error fmt = function
  | Bad_marker -> Format.pp_print_string fmt "bad marker"
  | Bad_length n -> Format.fprintf fmt "bad length %d" n
  | Bad_type n -> Format.fprintf fmt "bad message type %d" n
  | Too_long n -> Format.fprintf fmt "message too long (%d)" n
  | Malformed s -> Format.fprintf fmt "malformed: %s" s

(* --- Encoding ----------------------------------------------------------- *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let add_u16 b v =
  add_u8 b (v lsr 8);
  add_u8 b v

let add_u32 b v =
  add_u16 b (v lsr 16);
  add_u16 b v

let add_prefix b (p : Netsim.Addr.prefix) =
  add_u8 b p.Netsim.Addr.len;
  let nbytes = (p.Netsim.Addr.len + 7) / 8 in
  let base = Netsim.Addr.to_int p.Netsim.Addr.base in
  for i = 0 to nbytes - 1 do
    add_u8 b ((base lsr (24 - (8 * i))) land 0xFF)
  done

let rec add_asns ~as4 b = function
  | [] -> ()
  | asn :: rest ->
      if as4 then add_u32 b asn else add_u16 b asn;
      add_asns ~as4 b rest

let add_as_segment ~as4 b kind asns =
  add_u8 b kind;
  add_u8 b (List.length asns);
  add_asns ~as4 b asns

let rec encode_as_path ~as4 b = function
  | [] -> ()
  | seg :: rest ->
      (match seg with
      | Attrs.Set a -> add_as_segment ~as4 b 1 a
      | Attrs.Seq a -> add_as_segment ~as4 b 2 a);
      encode_as_path ~as4 b rest

let encode_attr b ~flags ~typ value =
  let len = String.length value in
  if len > 255 then invalid_arg "encode_attr: use encode_attr_auto";
  add_u8 b flags;
  add_u8 b typ;
  add_u8 b len;
  Buffer.add_string b value

let encode_attr_auto b ~flags ~typ value =
  let len = String.length value in
  if len > 255 then begin
    add_u8 b (flags lor 0x10);
    add_u8 b typ;
    add_u16 b len;
    Buffer.add_string b value
  end
  else encode_attr b ~flags ~typ value

(* A u32-valued attribute has fixed length 4: write it directly rather
   than through a sub buffer and its closure (h1 budget). *)
let encode_attr_u32 b ~flags ~typ v =
  add_u8 b flags;
  add_u8 b typ;
  add_u8 b 4;
  add_u32 b v

let rec add_communities b = function
  | [] -> ()
  | (asn, v) :: rest ->
      add_u16 b asn;
      add_u16 b v;
      add_communities b rest

let encode_attrs ~as4 (a : Attrs.t) =
  let b = Buffer.create 128 in
  (* ORIGIN *)
  encode_attr b ~flags:0x40 ~typ:1
    (String.make 1 (Char.chr (Attrs.origin_rank a.origin)));
  (* AS_PATH *)
  let pb = Buffer.create 64 in
  encode_as_path ~as4 pb a.as_path;
  encode_attr_auto b ~flags:0x40 ~typ:2 (Buffer.contents pb);
  (* NEXT_HOP *)
  encode_attr_u32 b ~flags:0x40 ~typ:3 (Netsim.Addr.to_int a.next_hop);
  (* MED *)
  (match a.med with
  | Some med -> encode_attr_u32 b ~flags:0x80 ~typ:4 med
  | None -> ());
  (* LOCAL_PREF *)
  (match a.local_pref with
  | Some lp -> encode_attr_u32 b ~flags:0x40 ~typ:5 lp
  | None -> ());
  if a.atomic_aggregate then encode_attr b ~flags:0x40 ~typ:6 "";
  (* COMMUNITY *)
  if a.communities <> [] then begin
    let cb = Buffer.create 64 in
    add_communities cb a.communities;
    encode_attr_auto b ~flags:0xC0 ~typ:8 (Buffer.contents cb)
  end;
  Buffer.contents b

let encode_capability b = function
  | Cap_route_refresh ->
      add_u8 b 2;
      add_u8 b 0
  | Cap_four_octet_asn asn ->
      add_u8 b 65;
      add_u8 b 4;
      add_u32 b asn
  | Cap_graceful_restart { restart_time; preserved_fwd } ->
      add_u8 b 64;
      add_u8 b 6;
      (* Flags nibble (R bit clear) + 12-bit restart time, then one
         IPv4/unicast AFI entry. *)
      add_u16 b (restart_time land 0xFFF);
      add_u16 b 1 (* AFI IPv4 *);
      add_u8 b 1 (* SAFI unicast *);
      add_u8 b (if preserved_fwd then 0x80 else 0x00)
  | Cap_unknown (code, value) ->
      add_u8 b code;
      add_u8 b (String.length value);
      Buffer.add_string b value

let rec encode_capabilities b = function
  | [] -> ()
  | c :: rest ->
      encode_capability b c;
      encode_capabilities b rest

let rec add_prefixes b = function
  | [] -> ()
  | p :: rest ->
      add_prefix b p;
      add_prefixes b rest

let encode_body ~as4 = function
  | Keepalive -> ""
  | msg ->
      let b = Buffer.create 64 in
      (match msg with
      | Keepalive -> ()
      | Open o ->
          add_u8 b o.version;
          add_u16 b (if o.asn > 0xFFFF then as_trans else o.asn);
          add_u16 b o.hold_time;
          add_u32 b (Netsim.Addr.to_int o.router_id);
          let cb = Buffer.create 64 in
          encode_capabilities cb o.capabilities;
          let caps = Buffer.contents cb in
          if String.length caps = 0 then add_u8 b 0
          else begin
            (* One optional parameter of type 2 (capabilities). *)
            add_u8 b (String.length caps + 2);
            add_u8 b 2;
            add_u8 b (String.length caps);
            Buffer.add_string b caps
          end
      | Update u ->
          let wb = Buffer.create 64 in
          add_prefixes wb u.withdrawn;
          let withdrawn = Buffer.contents wb in
          add_u16 b (String.length withdrawn);
          Buffer.add_string b withdrawn;
          let attrs =
            match u.attrs with Some a -> encode_attrs ~as4 a | None -> ""
          in
          add_u16 b (String.length attrs);
          Buffer.add_string b attrs;
          add_prefixes b u.nlri
      | Notification n ->
          add_u8 b n.code;
          add_u8 b n.subcode;
          Buffer.add_string b n.data
      | Route_refresh { afi; safi } ->
          add_u16 b afi;
          add_u8 b 0;
          add_u8 b safi);
      Buffer.contents b

let type_code = function
  | Open _ -> 1
  | Update _ -> 2
  | Notification _ -> 3
  | Keepalive -> 4
  | Route_refresh _ -> 5

let encode ?(as4 = true) msg =
  let body = encode_body ~as4 msg in
  let total = header_size + String.length body in
  if total > max_size then
    invalid_arg (Printf.sprintf "Msg.encode: %d bytes exceeds max %d" total max_size);
  let b = Buffer.create total in
  for _ = 1 to 16 do
    Buffer.add_char b '\xFF'
  done;
  add_u16 b total;
  add_u8 b (type_code msg);
  Buffer.add_string b body;
  Buffer.contents b

(* --- Decoding ----------------------------------------------------------- *)

exception Fail of error

type reader = { src : string; mutable pos : int; limit : int }

let need r n =
  if r.pos + n > r.limit then raise (Fail (Malformed "truncated"))

let u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let u16 r =
  let hi = u8 r in
  let lo = u8 r in
  (hi lsl 8) lor lo

let u32 r =
  let hi = u16 r in
  let lo = u16 r in
  (hi lsl 16) lor lo

let str r n =
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let read_prefix r =
  let len = u8 r in
  if len > 32 then raise (Fail (Malformed "prefix length > 32"));
  let nbytes = (len + 7) / 8 in
  need r nbytes;
  let base = ref 0 in
  for i = 0 to nbytes - 1 do
    base := !base lor (Char.code r.src.[r.pos + i] lsl (24 - (8 * i)))
  done;
  r.pos <- r.pos + nbytes;
  Netsim.Addr.prefix (Netsim.Addr.of_int !base) len

let read_prefixes r stop =
  let out = ref [] in
  while r.pos < stop do
    out := read_prefix r :: !out
  done;
  List.rev !out

let read_as_path ~as4 r stop =
  let out = ref [] in
  while r.pos < stop do
    let kind = u8 r in
    let count = u8 r in
    let asns = List.init count (fun _ -> if as4 then u32 r else u16 r) in
    match kind with
    | 1 -> out := Attrs.Set asns :: !out
    | 2 -> out := Attrs.Seq asns :: !out
    | k -> raise (Fail (Malformed (Printf.sprintf "AS_PATH segment type %d" k)))
  done;
  List.rev !out

let read_attrs ~as4 r stop =
  (* Accumulate fields then assemble; NEXT_HOP is mandatory for updates
     with NLRI, checked by the caller. *)
  let origin = ref Attrs.Igp in
  let as_path = ref [] in
  let next_hop = ref None in
  let med = ref None in
  let local_pref = ref None in
  let atomic = ref false in
  let communities = ref [] in
  while r.pos < stop do
    let flags = u8 r in
    let typ = u8 r in
    let len = if flags land 0x10 <> 0 then u16 r else u8 r in
    let value_end = r.pos + len in
    if value_end > stop then raise (Fail (Malformed "attribute overruns"));
    (match typ with
    | 1 ->
        (match u8 r with
        | 0 -> origin := Attrs.Igp
        | 1 -> origin := Attrs.Egp
        | 2 -> origin := Attrs.Incomplete
        | v -> raise (Fail (Malformed (Printf.sprintf "origin %d" v))))
    | 2 -> as_path := read_as_path ~as4 r value_end
    | 3 -> next_hop := Some (Netsim.Addr.of_int (u32 r))
    | 4 -> med := Some (u32 r)
    | 5 -> local_pref := Some (u32 r)
    | 6 -> atomic := true
    | 8 ->
        let out = ref [] in
        while r.pos < value_end do
          let asn = u16 r in
          let v = u16 r in
          out := (asn, v) :: !out
        done;
        communities := List.rev !out
    | _ -> r.pos <- value_end (* skip unknown attribute *));
    if r.pos <> value_end then raise (Fail (Malformed "attribute length"))
  done;
  fun () ->
    match !next_hop with
    | None -> raise (Fail (Malformed "missing NEXT_HOP"))
    | Some nh ->
        {
          Attrs.origin = !origin;
          as_path = !as_path;
          next_hop = nh;
          med = !med;
          local_pref = !local_pref;
          atomic_aggregate = !atomic;
          communities = !communities;
        }

let read_capabilities r stop =
  let out = ref [] in
  while r.pos < stop do
    let code = u8 r in
    let len = u8 r in
    let value_end = r.pos + len in
    if value_end > stop then raise (Fail (Malformed "capability overruns"));
    (match (code, len) with
    | 2, 0 -> out := Cap_route_refresh :: !out
    | 65, 4 -> out := Cap_four_octet_asn (u32 r) :: !out
    | 64, _ when len >= 2 ->
        let word = u16 r in
        let restart_time = word land 0xFFF in
        let preserved_fwd =
          (* Look at the first AFI entry's flags if present. *)
          if len >= 6 then begin
            let _afi = u16 r in
            let _safi = u8 r in
            let flags = u8 r in
            r.pos <- value_end;
            flags land 0x80 <> 0
          end
          else false
        in
        out := Cap_graceful_restart { restart_time; preserved_fwd } :: !out
    | _ -> out := Cap_unknown (code, str r len) :: !out);
    r.pos <- value_end
  done;
  List.rev !out

let decode_body ~as4 typ r =
  match typ with
  | 1 ->
      let version = u8 r in
      let wire_asn = u16 r in
      let hold_time = u16 r in
      let router_id = Netsim.Addr.of_int (u32 r) in
      let opt_len = u8 r in
      let opt_end = r.pos + opt_len in
      if opt_end > r.limit then raise (Fail (Malformed "options overrun"));
      let caps = ref [] in
      while r.pos < opt_end do
        let ptype = u8 r in
        let plen = u8 r in
        let pend = r.pos + plen in
        if pend > opt_end then raise (Fail (Malformed "parameter overruns"));
        if ptype = 2 then caps := !caps @ read_capabilities r pend
        else r.pos <- pend
      done;
      let asn =
        (* RFC 6793: AS_TRANS in the header, the real ASN in cap 65. *)
        match
          List.find_opt (function Cap_four_octet_asn _ -> true | _ -> false) !caps
        with
        | Some (Cap_four_octet_asn real) -> real
        | _ -> wire_asn
      in
      Open { version; asn; hold_time; router_id; capabilities = !caps }
  | 2 ->
      let wlen = u16 r in
      let wend = r.pos + wlen in
      if wend > r.limit then raise (Fail (Malformed "withdrawn overrun"));
      let withdrawn = read_prefixes r wend in
      let alen = u16 r in
      let aend = r.pos + alen in
      if aend > r.limit then raise (Fail (Malformed "attrs overrun"));
      let attrs_thunk = if alen = 0 then None else Some (read_attrs ~as4 r aend) in
      let nlri = read_prefixes r r.limit in
      let attrs =
        match (attrs_thunk, nlri) with
        | None, [] -> None
        | None, _ :: _ -> raise (Fail (Malformed "NLRI without attributes"))
        | Some thunk, _ -> Some (thunk ())
      in
      Update { withdrawn; attrs; nlri }
  | 3 ->
      let code = u8 r in
      let subcode = u8 r in
      let data = str r (r.limit - r.pos) in
      Notification { code; subcode; data }
  | 4 -> Keepalive
  | 5 ->
      let afi = u16 r in
      let _reserved = u8 r in
      let safi = u8 r in
      Route_refresh { afi; safi }
  | n -> raise (Fail (Bad_type n))

let check_header frame =
  if String.length frame < header_size then raise (Fail (Malformed "short frame"));
  for i = 0 to 15 do
    if frame.[i] <> '\xFF' then raise (Fail Bad_marker)
  done;
  let len = (Char.code frame.[16] lsl 8) lor Char.code frame.[17] in
  if len < header_size then raise (Fail (Bad_length len));
  if len > max_size then raise (Fail (Too_long len));
  if len <> String.length frame then raise (Fail (Bad_length len));
  (len, Char.code frame.[18])

let decode ?(as4 = true) frame =
  match
    let len, typ = check_header frame in
    let r = { src = frame; pos = header_size; limit = len } in
    let msg = decode_body ~as4 typ r in
    if r.pos <> r.limit then raise (Fail (Malformed "trailing bytes"));
    msg
  with
  | msg -> Ok msg
  | exception Fail e -> Error e

let error_notification e =
  let code, subcode =
    match e with
    | Bad_marker -> (1, 1)
    | Bad_length _ -> (1, 2)
    | Bad_type _ -> (1, 3)
    | Too_long _ -> (1, 2)
    | Malformed _ -> (3, 0)
  in
  Notification { code; subcode; data = "" }

(* --- Framer ------------------------------------------------------------- *)

module Framer = struct
  type msg = t

  type t = {
    as4 : bool;
    buf : Buffer.t;
    mutable poisoned : error option;
  }

  let create ?(as4 = true) () = { as4; buf = Buffer.create 256; poisoned = None }

  let buffered t = Buffer.length t.buf
  let buffered_bytes t = Buffer.contents t.buf

  let push t data =
    match t.poisoned with
    | Some e -> [ Error e ]
    | None ->
        Buffer.add_string t.buf data;
        let out = ref [] in
        let continue = ref true in
        while !continue && t.poisoned = None do
          let avail = Buffer.length t.buf in
          if avail < header_size then continue := false
          else begin
            let contents = Buffer.contents t.buf in
            let len =
              (Char.code contents.[16] lsl 8) lor Char.code contents.[17]
            in
            if len < header_size || len > max_size then begin
              let e = if len > max_size then Too_long len else Bad_length len in
              t.poisoned <- Some e;
              out := Error e :: !out
            end
            else if avail < len then continue := false
            else begin
              let frame = String.sub contents 0 len in
              Buffer.clear t.buf;
              Buffer.add_substring t.buf contents len (avail - len);
              match decode ~as4:t.as4 frame with
              | Ok msg -> out := Ok (msg, len) :: !out
              | Error e ->
                  t.poisoned <- Some e;
                  out := Error e :: !out
            end
          end
        done;
        List.rev !out
end

let pp fmt = function
  | Open o ->
      Format.fprintf fmt "OPEN as=%d hold=%d id=%a caps=%d" o.asn o.hold_time
        Netsim.Addr.pp o.router_id
        (List.length o.capabilities)
  | Update u ->
      if is_end_of_rib (Update u) then Format.pp_print_string fmt "End-of-RIB"
      else
        Format.fprintf fmt "UPDATE +%d -%d%s" (List.length u.nlri)
          (List.length u.withdrawn)
          (match u.attrs with
          | Some a -> Format.asprintf " [%a]" Attrs.pp a
          | None -> "")
  | Notification n -> Format.fprintf fmt "NOTIFICATION %d/%d" n.code n.subcode
  | Keepalive -> Format.pp_print_string fmt "KEEPALIVE"
  | Route_refresh { afi; safi } ->
      Format.fprintf fmt "ROUTE-REFRESH %d/%d" afi safi
