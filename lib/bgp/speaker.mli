(** A BGP speaker: one routing process, as deployed in one TENSOR
    container.

    The speaker owns VRFs (each a {!Rib.t}), the peer sessions bound to
    them, and the export machinery (per-peer policies, eBGP/iBGP rules,
    update packing). It models the paper's common BGP threading structure
    (§3.1.2): a {e main thread} whose work is represented by a serialized
    CPU-cost budget (the [profile]), an {e IO thread} (the TCP stack's
    per-segment cost), and a {e keepalive thread} (session-internal
    keepalives that never wait behind main-thread work).

    The [profile] carries the per-update and per-message costs that
    distinguish FRRouting, GoBGP, BIRD and TENSOR in the paper's Figure 6,
    including whether {e update packing} (§4.2) is implemented.

    The [hooks] are TENSOR's integration points: replicate-on-receive
    (with the inferred ACK number of §3.1.2), replicate-before-send, and
    routing-table checkpointing on every Loc-RIB change. With [no_hooks]
    the speaker behaves like a plain open-source daemon. *)

type profile = {
  profile_name : string;
  rx_per_update : Sim.Time.span;  (** Main-thread cost per learned route. *)
  rx_per_msg : Sim.Time.span;
  tx_per_update : Sim.Time.span;  (** Generation cost per route (first copy). *)
  tx_per_msg : Sim.Time.span;
  tx_clone_per_msg : Sim.Time.span;
      (** Per additional peer per packed message (update packing's cheap
          replication path). *)
  tx_coalesce : Sim.Time.span;
      (** Advertisement coalescing delay before dispatching an export
          batch — every real daemon batches route advertisements behind a
          short timer, which is the ~40 ms floor all implementations show
          at small update counts in Figure 6(a). *)
  update_packing : bool;
}

val default_profile : profile
(** FRRouting-like: 4 µs/update rx, packing enabled. *)

type t
type peer

type hooks = {
  on_rx_replicate : peer -> Msg.t -> size:int -> inferred_ack:int -> unit;
      (** Invoked when a message has been parsed, {e before} main-thread
          processing (replication runs concurrently with processing;
          §3.1.1). [inferred_ack] is the TCP ACK number covering the
          message. *)
  on_tx_replicate : peer -> Msg.t -> string -> (unit -> unit) -> unit;
      (** Delayed sending: invoked with the encoded frame; the
          continuation releases the message to TCP. Covers keepalives. *)
  on_rib_change : vrf:string -> Rib.change -> unit;
      (** Loc-RIB checkpointing (§3.1.2 "BGP routing tables"). *)
  on_updates_applied : vrf:string -> int -> unit;
      (** Progress signal: [n] updates just applied to the RIB. *)
  on_rx_applied : peer -> Msg.t -> unit;
      (** A received message has been fully applied to the routing table —
          the trigger for trimming its replica from the store (§3.1.2
          "Storage overhead"). Fired in receive order per peer. *)
}

val no_hooks : hooks

val create :
  ?profile:profile ->
  ?hooks:hooks ->
  ?listen_port:int ->
  stack:Tcp.stack ->
  local_asn:int ->
  router_id:Netsim.Addr.t ->
  unit ->
  t
(** The speaker starts listening on [listen_port] (default 179)
    immediately; active sessions start per-peer via {!add_peer} +
    {!start_peer} or {!start}. *)

val stack : t -> Tcp.stack
val engine : t -> Sim.Engine.t
val local_asn : t -> int
val router_id : t -> Netsim.Addr.t

(** {1 VRFs} *)

val add_vrf : t -> string -> unit
(** Idempotent. *)

val vrfs : t -> string list
val rib : t -> vrf:string -> Rib.t
(** Raises [Not_found] for an unknown VRF. *)

(** {1 Peers} *)

type peer_config = {
  vrf : string;
  remote_addr : Netsim.Addr.t;
  local_addr : Netsim.Addr.t option;
      (** Source address for the session (the VRF's service address on
          multi-VRF containers); [None] uses the node default. *)
  remote_asn : int option;  (** Enforced when set; iBGP when equal to ours. *)
  passive : bool;
  hold_time : int;
  policy_in : Policy.t;
  policy_out : Policy.t;
  graceful_restart : int option;  (** Advertised restart time (s). *)
  reconnect : Sim.Time.span option;
      (** Backoff before re-opening a dropped active session. *)
}

val default_peer_config :
  vrf:string -> remote_addr:Netsim.Addr.t -> unit -> peer_config
(** Active, hold 90 s, empty policies, GR 120 s, reconnect after 5 s. *)

val add_peer : t -> peer_config -> peer
(** Registers the peer (and its VRF if new). Does not connect yet. *)

val start_peer : t -> peer -> unit
(** Starts the active open (no-op for passive peers, which are adopted by
    the listener). *)

val start : t -> unit
(** {!start_peer} for every registered peer. *)

val request_refresh : t -> peer -> unit
(** Sends a ROUTE-REFRESH (RFC 2918) asking the peer to resend its
    Adj-RIB-Out — the standard way to re-evaluate a changed import policy
    without bouncing the session. No-op unless Established. *)

val stop_peer : t -> peer -> unit
(** Administrative stop (Cease); disables auto-reconnect until
    {!start_peer}. *)

val peers : t -> peer list
val peer_state : peer -> Session.state
val peer_cfg : peer -> peer_config
val peer_session : peer -> Session.t option
val peer_source_key : peer -> string
val on_peer_up : peer -> (unit -> unit) -> unit
val on_peer_down : peer -> (Session.down_reason -> unit) -> unit

(** {1 Routes} *)

val originate : t -> vrf:string -> ?attrs:Attrs.t -> Netsim.Addr.prefix list -> unit
(** Installs locally originated routes (empty AS path, next hop = router
    id unless [attrs] overrides) and advertises the resulting changes. *)

val withdraw_origin : t -> vrf:string -> Netsim.Addr.prefix list -> unit

val restore_route :
  t -> vrf:string -> Rib.source -> Netsim.Addr.prefix -> Attrs.t -> unit
(** NSR restore path: installs a checkpointed path {e without} exporting
    the change (the failed primary already advertised it; re-announcing
    would be reconvergence, which NSR avoids). *)

val resume_peer :
  t ->
  peer_config ->
  repair:Tcp.Repair.t ->
  negotiated:Session.negotiated ->
  ?framer_seed:string ->
  unit ->
  peer
(** The NSR migration path: adopts an Established session rebuilt from a
    TCP_REPAIR snapshot and the primary's negotiated parameters. No
    handshake and no table sync happen — the peer never learns the
    speaker changed machines. *)

val resync_adj_out : t -> peer -> unit
(** Post-takeover Adj-RIB-Out audit: re-sends the full table to a resumed
    peer. An UPDATE the failed primary generated but never stored was
    never on the wire (delayed sending), and nothing else regenerates it;
    routes the peer already holds arrive as implicit updates with
    identical attributes, so the audit is invisible at the RIB level. *)

val replay_update : t -> peer -> Msg.update -> unit
(** Recovery replay: applies a replicated-but-unapplied UPDATE through
    the normal receive path (policy, RIB, checkpoint hooks) without a
    transport. Used by the backup after {!resume_peer}. *)

(** {1 Statistics} *)

val updates_learned : t -> int
(** Cumulative routes (NLRI + withdrawals) applied to RIBs. *)

val updates_sent : t -> int
(** Cumulative routes handed to the IO thread. *)

val messages_sent : t -> int
val last_tx_handoff : t -> Sim.Time.t
(** Instant the most recent outgoing message reached TCP. *)

val last_rx_applied : t -> Sim.Time.t
(** Instant the most recent received update finished RIB application. *)
