open Sim

let m_msgs_in = Telemetry.Registry.counter "bgp.msgs_in"
let m_msgs_out = Telemetry.Registry.counter "bgp.msgs_out"
let m_upd_in = Telemetry.Registry.counter "bgp.updates_in"
let m_upd_out = Telemetry.Registry.counter "bgp.updates_out"
let m_established = Telemetry.Registry.counter "bgp.sessions_established"
let m_down = Telemetry.Registry.counter "bgp.sessions_down"
let m_resumed = Telemetry.Registry.counter "bgp.sessions_resumed"

type state = Idle | Connecting | Open_sent | Open_confirm | Established | Down

let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Idle -> "Idle"
    | Connecting -> "Connecting"
    | Open_sent -> "OpenSent"
    | Open_confirm -> "OpenConfirm"
    | Established -> "Established"
    | Down -> "Down")

type down_reason =
  | Transport_failed of Tcp.close_reason
  | Notification_received of Msg.notification
  | Notification_sent of Msg.notification
  | Hold_timer_expired
  | Stopped

let pp_down_reason fmt = function
  | Transport_failed r -> Format.fprintf fmt "transport %a" Tcp.pp_close_reason r
  | Notification_received n ->
      Format.fprintf fmt "notification received %d/%d" n.Msg.code n.Msg.subcode
  | Notification_sent n ->
      Format.fprintf fmt "notification sent %d/%d" n.Msg.code n.Msg.subcode
  | Hold_timer_expired -> Format.pp_print_string fmt "hold timer expired"
  | Stopped -> Format.pp_print_string fmt "stopped"

type event =
  | Session_established of Msg.open_msg
  | Message_received of Msg.t * int
  | Session_went_down of down_reason

type config = {
  local_asn : int;
  router_id : Netsim.Addr.t;
  local_addr : Netsim.Addr.t option;
  peer_addr : Netsim.Addr.t;
  peer_asn : int option;
  hold_time : int;
  port : int;
  passive : bool;
  graceful_restart : int option;
  as4 : bool;
}

let default_config ~local_asn ~router_id ~peer_addr () =
  {
    local_asn;
    router_id;
    local_addr = None;
    peer_addr;
    peer_asn = None;
    hold_time = 90;
    port = 179;
    passive = false;
    graceful_restart = Some 120;
    as4 = true;
  }

type negotiated = {
  peer_open : Msg.open_msg;
  hold_time : int;
  peer_supports_gr : bool;
  peer_gr_restart_time : int;
  as4_in_use : bool;
}

type t = {
  cfg : config;
  eng : Engine.t;
  stack : Tcp.stack;
  mutable st : state;
  mutable tcp : Tcp.conn option;
  mutable framer : Msg.Framer.t;
  mutable neg : negotiated option;
  mutable hold_handle : Engine.handle option;
  mutable keepalive_timer : Engine.timer option;
  mutable pre_send : Msg.t -> string -> (unit -> unit) -> unit;
  mutable on_message : Msg.t -> size:int -> unit;
  mutable cb : t -> event -> unit;
  mutable parsed : int;
  mutable n_in : int;
  mutable n_out : int;
  mutable upd_in : int;
  mutable upd_out : int;
  mutable ka_in : int;
  mutable last_write_at : Time.t;
}

let state t = t.st
let config t = t.cfg
let negotiated t = t.neg
let conn t = t.tcp
let parsed_bytes t = t.parsed
let unparsed_tail t = Msg.Framer.buffered_bytes t.framer
let messages_in t = t.n_in
let messages_out t = t.n_out
let updates_in t = t.upd_in
let updates_out t = t.upd_out
let keepalives_in t = t.ka_in
let last_write t = t.last_write_at
let set_pre_send t f = t.pre_send <- f
let set_on_message t f = t.on_message <- f

let my_capabilities cfg =
  Msg.Cap_route_refresh :: Msg.Cap_four_octet_asn cfg.local_asn
  ::
  (match cfg.graceful_restart with
  | Some rt ->
      [ Msg.Cap_graceful_restart { restart_time = rt; preserved_fwd = true } ]
  | None -> [])

let my_open cfg =
  Msg.Open
    {
      version = 4;
      asn = cfg.local_asn;
      hold_time = cfg.hold_time;
      router_id = cfg.router_id;
      capabilities = my_capabilities cfg;
    }

let as4_wire t =
  (* Until negotiation completes, encode with AS4 iff configured; OPEN
     itself is AS4-agnostic. *)
  match t.neg with Some n -> n.as4_in_use | None -> t.cfg.as4

let raw_write t msg =
  match t.tcp with
  | None -> ()
  | Some c ->
      if Tcp.state c = Tcp.Established then begin
        t.n_out <- t.n_out + 1;
        Telemetry.Registry.incr m_msgs_out;
        t.upd_out <- t.upd_out + Msg.update_count msg;
        Telemetry.Registry.add m_upd_out (Msg.update_count msg);
        (match msg with
        | Msg.Update _ -> t.last_write_at <- Engine.now t.eng
        | Msg.Open _ | Msg.Notification _ | Msg.Keepalive | Msg.Route_refresh _
          -> ());
        Tcp.write c (Msg.encode ~as4:(as4_wire t) msg)
      end

let send_internal t msg =
  let raw = Msg.encode ~as4:(as4_wire t) msg in
  t.pre_send msg raw (fun () -> raw_write t msg)

let cancel_hold t =
  match t.hold_handle with
  | Some h ->
      Engine.cancel h;
      t.hold_handle <- None
  | None -> ()

let stop_keepalive t =
  match t.keepalive_timer with
  | Some timer ->
      Engine.stop_timer timer;
      t.keepalive_timer <- None
  | None -> ()

let session_ident t =
  ( Netsim.Node.name (Tcp.stack_node t.stack),
    Netsim.Addr.to_string t.cfg.peer_addr )

let teardown t reason =
  if t.st <> Down then begin
    let was_established = t.st = Established in
    t.st <- Down;
    if was_established then begin
      Telemetry.Registry.incr m_down;
      if Telemetry.Gate.on () then begin
        let node, peer = session_ident t in
        Telemetry.Bus.emit t.eng
          (Telemetry.Event.Session_down
             {
               node;
               peer;
               reason = Format.asprintf "%a" pp_down_reason reason;
             })
      end
    end;
    cancel_hold t;
    stop_keepalive t;
    (match t.tcp with
    | Some c when Tcp.state c <> Tcp.Closed ->
        Tcp.on_close c (fun _ -> ());
        Tcp.abort c
    | _ -> ());
    t.tcp <- None;
    t.cb t (Session_went_down reason)
  end

let send_notification_and_die t code subcode =
  let n = { Msg.code; subcode; data = "" } in
  (* Best-effort: write directly, bypassing the replication hook (a dying
     session must not block on the store). *)
  raw_write t (Msg.Notification n);
  teardown t (Notification_sent n)

let rec arm_hold t seconds =
  cancel_hold t;
  if seconds > 0 then
    t.hold_handle <-
      Some
        (Engine.schedule_after t.eng ~label:"bgp.hold" (Time.sec seconds)
           (fun () ->
             t.hold_handle <- None;
             send_notification_and_die t 4 0))

and reset_hold t =
  match t.neg with
  | Some n when n.hold_time > 0 -> arm_hold t n.hold_time
  | Some _ -> ()
  | None -> arm_hold t t.cfg.hold_time

let start_keepalives t =
  match t.neg with
  | Some n when n.hold_time > 0 ->
      let interval = Time.sec (max 1 (n.hold_time / 3)) in
      t.keepalive_timer <-
        Some
          (Engine.every t.eng ~label:"bgp.keepalive" interval (fun () ->
               if t.st = Established then send_internal t Msg.Keepalive))
  | _ -> ()

let negotiate (cfg : config) (o : Msg.open_msg) =
  let peer_gr =
    List.find_map
      (function
        | Msg.Cap_graceful_restart { restart_time; _ } -> Some restart_time
        | _ -> None)
      o.capabilities
  in
  let peer_as4 =
    List.exists
      (function Msg.Cap_four_octet_asn _ -> true | _ -> false)
      o.capabilities
  in
  {
    peer_open = o;
    hold_time = min cfg.hold_time o.hold_time;
    peer_supports_gr = peer_gr <> None;
    peer_gr_restart_time = (match peer_gr with Some rt -> rt | None -> 0);
    as4_in_use = cfg.as4 && peer_as4;
  }

let validate_open cfg (o : Msg.open_msg) =
  if o.version <> 4 then Error (2, 1)
  else
    match cfg.peer_asn with
    | Some expected when expected <> o.asn -> Error (2, 2)
    | _ -> if o.hold_time = 1 || o.hold_time = 2 then Error (2, 6) else Ok ()

let handle_open t o =
  match validate_open t.cfg o with
  | Error (code, subcode) -> send_notification_and_die t code subcode
  | Ok () ->
      let neg = negotiate t.cfg o in
      t.neg <- Some neg;
      (* Rebuild the framer with the negotiated AS4 mode for subsequent
         messages. (OPEN and KEEPALIVE are AS4-agnostic.) *)
      t.framer <- Msg.Framer.create ~as4:neg.as4_in_use ();
      send_internal t Msg.Keepalive;
      t.st <- Open_confirm;
      reset_hold t

let establish t =
  t.st <- Established;
  Telemetry.Registry.incr m_established;
  if Telemetry.Gate.on () then begin
    let node, peer = session_ident t in
    Telemetry.Bus.emit t.eng
      (Telemetry.Event.Session_established { node; peer })
  end;
  reset_hold t;
  start_keepalives t;
  match t.neg with
  | Some n -> t.cb t (Session_established n.peer_open)
  | None -> ()

let handle_message t msg size =
  t.n_in <- t.n_in + 1;
  Telemetry.Registry.incr m_msgs_in;
  t.on_message msg ~size;
  reset_hold t;
  match (t.st, msg) with
  | ( (Idle | Connecting | Open_sent | Open_confirm | Established | Down),
      Msg.Notification n ) ->
      teardown t (Notification_received n)
  | Open_sent, Msg.Open o -> handle_open t o
  | Open_sent, _ -> send_notification_and_die t 5 0 (* FSM error *)
  | Open_confirm, Msg.Keepalive ->
      t.ka_in <- t.ka_in + 1;
      establish t
  | Open_confirm, Msg.Open _ ->
      (* Duplicate OPEN (e.g. retransmitted): tolerate. *)
      ()
  | Open_confirm, _ -> send_notification_and_die t 5 0
  | Established, Msg.Keepalive -> t.ka_in <- t.ka_in + 1
  | Established, Msg.Update u ->
      t.upd_in <- t.upd_in + List.length u.nlri + List.length u.withdrawn;
      Telemetry.Registry.add m_upd_in
        (List.length u.nlri + List.length u.withdrawn);
      t.cb t (Message_received (msg, size))
  | Established, Msg.Route_refresh _ -> t.cb t (Message_received (msg, size))
  | Established, Msg.Open _ -> send_notification_and_die t 5 0
  | (Idle | Connecting | Down), _ -> ()

let on_stream_data t data =
  let results = Msg.Framer.push t.framer data in
  List.iter
    (fun r ->
      if t.st <> Down then
        match r with
        | Ok (msg, size) ->
            t.parsed <- t.parsed + size;
            handle_message t msg size
        | Error e ->
            let n =
              match Msg.error_notification e with
              | Msg.Notification n -> n
              | _ -> { Msg.code = 1; subcode = 0; data = "" }
            in
            raw_write t (Msg.Notification n);
            teardown t (Notification_sent n))
    results

(* Wire a TCP connection's callbacks into the session. *)
let bind_tcp t c =
  t.tcp <- Some c;
  Tcp.on_data c (fun data -> on_stream_data t data);
  Tcp.on_close c (fun reason ->
      if t.st <> Down then teardown t (Transport_failed reason));
  Tcp.on_remote_close c (fun () ->
      if t.st <> Down then teardown t (Transport_failed Tcp.Closed_normally))

let make_t stack cfg cb =
  {
    cfg;
    eng = Tcp.stack_engine stack;
    stack;
    st = Idle;
    tcp = None;
    framer = Msg.Framer.create ~as4:true ();
    neg = None;
    hold_handle = None;
    keepalive_timer = None;
    pre_send = (fun _ _ k -> k ());
    on_message = (fun _ ~size:_ -> ());
    cb;
    parsed = 0;
    n_in = 0;
    n_out = 0;
    upd_in = 0;
    upd_out = 0;
    ka_in = 0;
    last_write_at = Time.zero;
  }

let begin_handshake t =
  send_internal t (my_open t.cfg);
  t.st <- Open_sent;
  (* A large initial hold protects the handshake (RFC suggests 4 min). *)
  arm_hold t 240

let start_active stack cfg ~cb =
  let t = make_t stack cfg cb in
  t.st <- Connecting;
  let c =
    Tcp.connect stack ?src:cfg.local_addr ~dst:cfg.peer_addr
      ~dst_port:cfg.port ()
  in
  bind_tcp t c;
  Tcp.on_established c (fun () -> if t.st = Connecting then begin_handshake t);
  t

let accept_passive stack cfg ~conn ~cb =
  let t = make_t stack cfg cb in
  bind_tcp t conn;
  begin_handshake t;
  t

let resume stack cfg ~repair ~negotiated:neg ~framer_seed ~cb =
  let t = make_t stack cfg cb in
  t.neg <- Some neg;
  t.framer <- Msg.Framer.create ~as4:neg.as4_in_use ();
  let c = Tcp.import_repair stack repair in
  bind_tcp t c;
  t.st <- Established;
  Telemetry.Registry.incr m_resumed;
  if Telemetry.Gate.on () then begin
    let node, peer = session_ident t in
    Telemetry.Bus.emit t.eng
      (Telemetry.Event.Session_resumed { node; peer })
  end;
  t.parsed <-
    repair.Tcp.Repair.rcv_nxt - repair.Tcp.Repair.irs - 1
    - String.length framer_seed;
  if String.length framer_seed > 0 then
    ignore (Msg.Framer.push t.framer framer_seed);
  reset_hold t;
  start_keepalives t;
  t

let send t msg =
  if t.st <> Established then
    invalid_arg "Session.send: session not established";
  send_internal t msg

let stop t =
  if t.st = Established || t.st = Open_confirm || t.st = Open_sent then
    send_notification_and_die t 6 0 (* Cease *)
  else teardown t Stopped
