(** Routing information bases and the BGP decision process.

    One [Rib.t] is a per-VRF table holding every path learned for every
    prefix (the union of the Adj-RIBs-In) together with a cached best
    path (the Loc-RIB view). Updates return the resulting best-path
    change, which the speaker propagates to its Adj-RIBs-Out.

    The decision process implements RFC 4271 §9.1: highest LOCAL_PREF,
    shortest AS path, lowest origin, lowest MED (compared only between
    paths from the same neighbouring AS), eBGP over iBGP, lowest router
    id, lowest peer address. The comparison is a total order over the
    candidate set, which the property tests rely on.

    Paths can be marked stale for graceful restart (RFC 4724): stale
    paths keep forwarding (remain eligible) until refreshed by the
    restarted peer or swept when the restart timer fires. *)

type source = {
  key : string;  (** Unique per session, e.g. ["vrf0/10.0.0.2"]. *)
  peer_asn : int;
  peer_addr : Netsim.Addr.t;
  router_id : Netsim.Addr.t;
  ebgp : bool;
}

type path = { source : source; attrs : Attrs.t; stale : bool }

type change =
  | Best_changed of Netsim.Addr.prefix * path
  | Best_withdrawn of Netsim.Addr.prefix

type t

val create : unit -> t

val update :
  t -> source -> Netsim.Addr.prefix -> Attrs.t option -> change option
(** [update t src prefix (Some attrs)] installs or replaces the path from
    [src]; [update t src prefix None] withdraws it. Returns the best-path
    change if the Loc-RIB view of [prefix] changed. A refreshed path
    clears any stale mark. *)

val best : t -> Netsim.Addr.prefix -> path option
val candidates : t -> Netsim.Addr.prefix -> path list
(** All paths for the prefix, best first. *)

val size : t -> int
(** Prefixes with at least one path. *)

val path_count : t -> int
(** Total paths across all prefixes. *)

val fold_best : t -> init:'a -> f:('a -> Netsim.Addr.prefix -> path -> 'a) -> 'a
(** Folds over the Loc-RIB (best path per prefix). *)

val best_prefixes : ?source_key:string -> t -> string list
(** Sorted best-path prefixes, optionally restricted to entries whose
    best path was learned from [source_key]. *)

val digest : ?source_key:string -> t -> string
(** Order-insensitive fingerprint (FNV-1a, hex) of {!best_prefixes}:
    two tables covering the same prefix set digest equally regardless
    of path attributes, which legitimately differ between the
    advertising and the learning side. *)

val remove_source : t -> key:string -> change list
(** Session death without graceful restart: drop every path from the
    source and report all best-path changes. *)

val mark_source_stale : t -> key:string -> int
(** Graceful restart entered: mark the source's paths stale (they remain
    in use). Returns how many were marked. *)

val sweep_stale : t -> key:string -> change list
(** Restart timer expiry or End-of-RIB: remove the source's still-stale
    paths and report changes. *)

val stale_count : t -> key:string -> int

val better : path -> path -> bool
(** [better a b] — the decision process preference, exposed for tests. *)
