open Sim

type profile = {
  profile_name : string;
  rx_per_update : Time.span;
  rx_per_msg : Time.span;
  tx_per_update : Time.span;
  tx_per_msg : Time.span;
  tx_clone_per_msg : Time.span;
  tx_coalesce : Time.span;
  update_packing : bool;
}

let default_profile =
  {
    profile_name = "default";
    rx_per_update = Time.us 4;
    rx_per_msg = Time.us 20;
    tx_per_update = Time.us 3;
    tx_per_msg = Time.us 15;
    tx_clone_per_msg = Time.us 25;
    tx_coalesce = Time.ms 35;
    update_packing = true;
  }

type t = {
  stk : Tcp.stack;
  eng : Engine.t;
  asn : int;
  rid : Netsim.Addr.t;
  profile : profile;
  hooks : hooks;
  listen_port : int;
  vrf_tbl : (string, Rib.t) Hashtbl.t;
  mutable vrf_order : string list;
  mutable peer_list : peer list;
  mutable busy_until : Time.t;
  mutable learned : int;
  mutable sent_updates : int;
  mutable sent_msgs : int;
  mutable last_tx : Time.t;
  mutable last_rx_apply : Time.t;
}

and peer = {
  sp : t;
  pcfg : peer_config;
  skey : string;
  mutable source : Rib.source;
  mutable session : Session.t option;
  mutable up_cb : unit -> unit;
  mutable down_cb : Session.down_reason -> unit;
  mutable gr_sweep : Engine.handle option;
  mutable admin_down : bool;
}

and peer_config = {
  vrf : string;
  remote_addr : Netsim.Addr.t;
  local_addr : Netsim.Addr.t option;
  remote_asn : int option;
  passive : bool;
  hold_time : int;
  policy_in : Policy.t;
  policy_out : Policy.t;
  graceful_restart : int option;
  reconnect : Time.span option;
}

and hooks = {
  on_rx_replicate : peer -> Msg.t -> size:int -> inferred_ack:int -> unit;
  on_tx_replicate : peer -> Msg.t -> string -> (unit -> unit) -> unit;
  on_rib_change : vrf:string -> Rib.change -> unit;
  on_updates_applied : vrf:string -> int -> unit;
  on_rx_applied : peer -> Msg.t -> unit;
}

let no_hooks =
  {
    on_rx_replicate = (fun _ _ ~size:_ ~inferred_ack:_ -> ());
    on_tx_replicate = (fun _ _ _ k -> k ());
    on_rib_change = (fun ~vrf:_ _ -> ());
    on_updates_applied = (fun ~vrf:_ _ -> ());
    on_rx_applied = (fun _ _ -> ());
  }

let stack t = t.stk
let engine t = t.eng
let local_asn t = t.asn
let router_id t = t.rid
let peers t = List.rev t.peer_list
let peer_cfg p = p.pcfg
let peer_session p = p.session
let peer_source_key p = p.skey
let on_peer_up p f = p.up_cb <- f
let on_peer_down p f = p.down_cb <- f

let peer_state p =
  match p.session with Some s -> Session.state s | None -> Session.Idle

let updates_learned t = t.learned
let updates_sent t = t.sent_updates
let messages_sent t = t.sent_msgs

(* The instant the latest outgoing message truly reached TCP: for hooked
   (TENSOR) speakers the replication release happens after dispatch, so
   fold over the sessions' own write stamps. *)
let last_tx_handoff t =
  List.fold_left
    (fun acc p ->
      match p.session with
      | Some s -> max acc (Session.last_write s)
      | None -> acc)
    t.last_tx (peers t)
let last_rx_applied t = t.last_rx_apply

let add_vrf t name =
  if not (Hashtbl.mem t.vrf_tbl name) then begin
    Hashtbl.replace t.vrf_tbl name (Rib.create ());
    t.vrf_order <- t.vrf_order @ [ name ]
  end

let vrfs t = t.vrf_order

let rib t ~vrf =
  match Hashtbl.find_opt t.vrf_tbl vrf with
  | Some r -> r
  | None -> raise Not_found

let default_peer_config ~vrf ~remote_addr () =
  {
    vrf;
    remote_addr;
    local_addr = None;
    remote_asn = None;
    passive = false;
    hold_time = 90;
    policy_in = Policy.empty;
    policy_out = Policy.empty;
    graceful_restart = Some 120;
    reconnect = Some (Time.sec 5);
  }

(* --- Main-thread cost model -------------------------------------------- *)

let run_on_main t cost f =
  let now = Engine.now t.eng in
  let start = if t.busy_until > now then t.busy_until else now in
  let finish = Time.add start cost in
  t.busy_until <- finish;
  ignore (Engine.schedule_at t.eng ~label:"bgp.main" finish f)

(* --- Export machinery ---------------------------------------------------- *)

let local_source t vrf =
  {
    Rib.key = "local/" ^ vrf;
    peer_asn = t.asn;
    peer_addr = t.rid;
    router_id = t.rid;
    ebgp = false;
  }

let is_local_source (s : Rib.source) =
  String.length s.key >= 6 && String.sub s.key 0 6 = "local/"

let peer_is_ebgp p =
  match p.session with
  | Some s -> (
      match Session.negotiated s with
      | Some n -> n.Session.peer_open.Msg.asn <> p.sp.asn
      | None -> (
          match p.pcfg.remote_asn with
          | Some a -> a <> p.sp.asn
          | None -> true))
  | None -> (
      match p.pcfg.remote_asn with Some a -> a <> p.sp.asn | None -> true)

let session_local_addr p =
  match p.session with
  | Some s -> (
      match Session.conn s with
      | Some c -> (Tcp.quad c).Tcp.Quad.local_addr
      | None -> p.sp.rid)
  | None -> p.sp.rid

(* Transform attributes for export to [p]; None = do not export. *)
let export_attrs p (path : Rib.path) =
  let t = p.sp in
  let ebgp = peer_is_ebgp p in
  if Attrs.has_community path.attrs Attrs.no_advertise then None
  else if ebgp && Attrs.has_community path.attrs Attrs.no_export then None
  else if
    (not ebgp) && (not path.source.ebgp) && not (is_local_source path.source)
  then None (* iBGP-learned routes are not re-advertised to iBGP peers *)
  else
    let attrs = path.attrs in
    let attrs =
      if ebgp then
        Attrs.with_local_pref
          (Attrs.with_next_hop (Attrs.prepend attrs t.asn) (session_local_addr p))
          None
      else
        Attrs.with_local_pref attrs
          (Some
             (match attrs.Attrs.local_pref with Some lp -> lp | None -> 100))
    in
    Some attrs

(* Group advertisements by identical attributes (update packing). *)
let group_by_attrs adverts =
  let sorted =
    List.sort (fun (_, a) (_, b) -> Attrs.compare a b) adverts
  in
  let rec go groups current_attrs current_pfx = function
    | [] ->
        if current_pfx = [] then List.rev groups
        else List.rev ((current_attrs, List.rev current_pfx) :: groups)
    | (pfx, attrs) :: rest ->
        if Attrs.equal attrs current_attrs then
          go groups current_attrs (pfx :: current_pfx) rest
        else
          go
            ((current_attrs, List.rev current_pfx) :: groups)
            attrs [ pfx ] rest
  in
  match sorted with
  | [] -> []
  | (pfx, attrs) :: rest -> go [] attrs [ pfx ] rest

(* Maximum NLRI per message so the frame stays under 4096 bytes. *)
let nlri_capacity attrs =
  let probe =
    Msg.encode (Msg.Update { withdrawn = []; attrs = Some attrs; nlri = [] })
  in
  max 1 ((Msg.max_size - String.length probe - 8) / 5)

let withdraw_capacity = (Msg.max_size - 32) / 5

let rec chunks n = function
  | [] -> []
  | l ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) (x :: acc) rest
      in
      let head, rest = take n [] l in
      head :: chunks n rest

(* Build the UPDATE messages for a set of transformed changes. NLRI with
   identical attributes always aggregate into shared messages (standard
   in every implementation); "update packing" only changes whether those
   messages are cheaply reused across peers (the cost model). *)
let build_messages adverts withdraws =
  let withdraw_msgs =
    chunks withdraw_capacity withdraws
    |> List.map (fun w -> Msg.Update { withdrawn = w; attrs = None; nlri = [] })
  in
  let advert_msgs =
    group_by_attrs adverts
    |> List.concat_map (fun (attrs, pfxs) ->
           chunks (nlri_capacity attrs) pfxs
           |> List.map (fun nlri ->
                  Msg.Update { withdrawn = []; attrs = Some attrs; nlri }))
  in
  withdraw_msgs @ advert_msgs

let established_session p =
  match p.session with
  | Some s when Session.state s = Session.Established -> Some s
  | _ -> None

(* Send messages to one peer, paying the generation or clone cost. *)
let dispatch_messages t p msgs ~first_copy =
  match established_session p with
  | None -> ()
  | Some session ->
      let nmsgs = List.length msgs in
      if nmsgs > 0 then begin
        let nupd =
          List.fold_left (fun acc m -> acc + Msg.update_count m) 0 msgs
        in
        (* With update packing, peers after the first pay only the cheap
           per-message cloning cost; without it (GoBGP), every peer pays
           full generation. *)
        let cost =
          if t.profile.update_packing && not first_copy then
            nmsgs * t.profile.tx_clone_per_msg
          else (nmsgs * t.profile.tx_per_msg) + (nupd * t.profile.tx_per_update)
        in
        let dispatch () = run_on_main t cost (fun () ->
            if established_session p <> None then begin
              List.iter (fun m -> Session.send session m) msgs;
              t.sent_msgs <- t.sent_msgs + nmsgs;
              t.sent_updates <- t.sent_updates + nupd;
              t.last_tx <- Engine.now t.eng
            end)
        in
        if t.profile.tx_coalesce > 0 then
          ignore
            (Engine.schedule_after t.eng ~label:"bgp.tx" t.profile.tx_coalesce
               dispatch)
        else dispatch ()
      end

(* Export a batch of best-path changes to every established peer of the
   VRF except [exclude]. *)
let export_changes t vrf changes ~exclude =
  if changes <> [] then begin
    let targets =
      List.filter
        (fun p ->
          p.pcfg.vrf = vrf
          && (not (String.equal p.skey exclude))
          && established_session p <> None)
        (peers t)
    in
    List.iteri
      (fun i p ->
        let adverts, withdraws =
          List.fold_left
            (fun (a, w) change ->
              match change with
              | Rib.Best_changed (pfx, path) -> (
                  match export_attrs p path with
                  | Some attrs -> (
                      match Policy.apply p.pcfg.policy_out pfx attrs with
                      | Some attrs -> ((pfx, attrs) :: a, w)
                      | None -> (a, w))
                  | None -> (a, w))
              | Rib.Best_withdrawn pfx -> (a, pfx :: w))
            ([], []) changes
        in
        let msgs = build_messages (List.rev adverts) (List.rev withdraws) in
        dispatch_messages t p msgs ~first_copy:(i = 0))
      targets
  end

(* Full-table sync to a newly established peer, ending with End-of-RIB. *)
let send_full_table t p =
  let vrf = p.pcfg.vrf in
  let table = rib t ~vrf in
  let adverts =
    Rib.fold_best table ~init:[] ~f:(fun acc pfx path ->
        if String.equal path.Rib.source.Rib.key p.skey then acc
        else
          match export_attrs p path with
          | Some attrs ->
              (match Policy.apply p.pcfg.policy_out pfx attrs with
              | Some attrs -> (pfx, attrs) :: acc
              | None -> acc)
          | None -> acc)
  in
  let msgs = build_messages adverts [] @ [ Msg.end_of_rib ] in
  dispatch_messages t p msgs ~first_copy:true

(* --- Receive path -------------------------------------------------------- *)

let apply_rib_changes t vrf changes ~exclude =
  List.iter (fun ch -> t.hooks.on_rib_change ~vrf ch) changes;
  export_changes t vrf changes ~exclude

let cancel_gr_sweep p =
  match p.gr_sweep with
  | Some h ->
      Engine.cancel h;
      p.gr_sweep <- None
  | None -> ()

let apply_update t p (u : Msg.update) =
  let vrf = p.pcfg.vrf in
  let table = rib t ~vrf in
  let count = List.length u.nlri + List.length u.withdrawn in
  let changes = ref [] in
  List.iter
    (fun pfx ->
      match Rib.update table p.source pfx None with
      | Some ch -> changes := ch :: !changes
      | None -> ())
    u.withdrawn;
  if u.withdrawn <> [] && Telemetry.Gate.on () then
    Telemetry.Bus.emit t.eng
      (Telemetry.Event.Routes_withdrawn
         {
           node = Netsim.Node.name (Tcp.stack_node t.stk);
           peer = Netsim.Addr.to_string p.pcfg.remote_addr;
           count = List.length u.withdrawn;
         });
  (match u.attrs with
  | Some attrs when u.nlri <> [] ->
      if Attrs.path_contains attrs t.asn then
        (* AS-path loop: reject the whole NLRI set. *)
        ()
      else
        List.iter
          (fun pfx ->
            match Policy.apply p.pcfg.policy_in pfx attrs with
            | Some attrs -> (
                match Rib.update table p.source pfx (Some attrs) with
                | Some ch -> changes := ch :: !changes
                | None -> ())
            | None -> ())
          u.nlri
  | _ -> ());
  t.learned <- t.learned + count;
  t.last_rx_apply <- Engine.now t.eng;
  if count > 0 then t.hooks.on_updates_applied ~vrf count;
  apply_rib_changes t vrf (List.rev !changes) ~exclude:p.skey;
  (* End-of-RIB completes a graceful restart: drop still-stale paths. *)
  if Msg.is_end_of_rib (Msg.Update u) then begin
    cancel_gr_sweep p;
    let changes = Rib.sweep_stale table ~key:p.skey in
    apply_rib_changes t vrf changes ~exclude:p.skey
  end;
  t.hooks.on_rx_applied p (Msg.Update u)

let handle_route_refresh t p =
  run_on_main t (Time.us 50) (fun () -> send_full_table t p)

(* Post-takeover Adj-RIB-Out audit. Delayed sending guarantees the peer
   never saw a message that was not durable — but the converse loss is
   possible: an UPDATE the failed primary generated and never got stored
   was never on the wire, and the resumed session will not regenerate it
   on its own. Re-sending the full table closes that gap; prefixes the
   peer already holds arrive as implicit updates with identical
   attributes, which change nothing and are invisible above TCP. *)
let resync_adj_out t p =
  run_on_main t (Time.us 50) (fun () -> send_full_table t p)

(* --- Session lifecycle ---------------------------------------------------- *)

let rec session_event t p session ev =
  match ev with
  | Session.Session_established o ->
      p.source <-
        {
          p.source with
          Rib.peer_asn = o.Msg.asn;
          router_id = o.Msg.router_id;
          ebgp = o.Msg.asn <> t.asn;
        };
      send_full_table t p;
      p.up_cb ()
  | Session.Message_received (msg, size) -> (
      ignore size;
      ignore session;
      match msg with
      | Msg.Update u ->
          let count = List.length u.nlri + List.length u.withdrawn in
          let cost =
            t.profile.rx_per_msg + (count * t.profile.rx_per_update)
          in
          run_on_main t cost (fun () -> apply_update t p u)
      | Msg.Route_refresh _ -> handle_route_refresh t p
      | Msg.Open _ | Msg.Notification _ | Msg.Keepalive -> ())
  | Session.Session_went_down reason ->
      handle_session_down t p reason

and handle_session_down t p reason =
  let vrf = p.pcfg.vrf in
  let table = rib t ~vrf in
  let gr_eligible =
    (match reason with
    | Session.Transport_failed _ | Session.Hold_timer_expired -> true
    | Session.Notification_received _ | Session.Notification_sent _
    | Session.Stopped ->
        false)
    &&
    match p.session with
    | Some s -> (
        match Session.negotiated s with
        | Some n -> n.Session.peer_supports_gr
        | None -> false)
    | None -> false
  in
  let restart_time =
    match p.session with
    | Some s -> (
        match Session.negotiated s with
        | Some n -> max 1 n.Session.peer_gr_restart_time
        | None -> 120)
    | None -> 120
  in
  p.session <- None;
  if gr_eligible then begin
    ignore (Rib.mark_source_stale table ~key:p.skey);
    cancel_gr_sweep p;
    p.gr_sweep <-
      Some
        (Engine.schedule_after t.eng ~label:"bgp.gr_sweep"
           (Time.sec restart_time) (fun () ->
             p.gr_sweep <- None;
             let changes = Rib.sweep_stale table ~key:p.skey in
             apply_rib_changes t vrf changes ~exclude:p.skey))
  end
  else begin
    let changes = Rib.remove_source table ~key:p.skey in
    apply_rib_changes t vrf changes ~exclude:p.skey
  end;
  p.down_cb reason;
  (* Auto-reconnect for active peers. *)
  match p.pcfg.reconnect with
  | Some backoff when (not p.pcfg.passive) && not p.admin_down ->
      ignore
        (Engine.schedule_after t.eng ~label:"bgp.reconnect" backoff (fun () ->
             if p.session = None && not p.admin_down then start_peer t p))
  | _ -> ()

and session_config t (pc : peer_config) =
  {
    Session.local_asn = t.asn;
    router_id = t.rid;
    local_addr = pc.local_addr;
    peer_addr = pc.remote_addr;
    peer_asn = pc.remote_asn;
    hold_time = pc.hold_time;
    port = t.listen_port;
    passive = pc.passive;
    graceful_restart = pc.graceful_restart;
    as4 = true;
  }

and attach_session t p session =
  p.session <- Some session;
  Session.set_pre_send session (fun msg raw k ->
      t.hooks.on_tx_replicate p msg raw k);
  (* The receive-replication tap covers every message type (keepalives
     included), with the inferred ACK current at parse time. *)
  Session.set_on_message session (fun msg ~size ->
      match Session.conn session with
      | Some c ->
          let inferred_ack = Tcp.irs c + 1 + Session.parsed_bytes session in
          t.hooks.on_rx_replicate p msg ~size ~inferred_ack
      | None -> ())

and start_peer t p =
  p.admin_down <- false;
  if (not p.pcfg.passive) && p.session = None then begin
    let session =
      Session.start_active t.stk (session_config t p.pcfg)
        ~cb:(fun s ev -> session_event t p s ev)
    in
    attach_session t p session
  end

let request_refresh _t p =
  match established_session p with
  | Some s -> Session.send s (Msg.Route_refresh { afi = 1; safi = 1 })
  | None -> ()

let stop_peer _t p =
  p.admin_down <- true;
  match p.session with
  | Some s ->
      Session.stop s (* triggers Session_went_down -> cleanup *)
  | None -> ()

let add_peer t pcfg =
  add_vrf t pcfg.vrf;
  let skey = pcfg.vrf ^ "/" ^ Netsim.Addr.to_string pcfg.remote_addr in
  let p =
    {
      sp = t;
      pcfg;
      skey;
      source =
        {
          Rib.key = skey;
          peer_asn = (match pcfg.remote_asn with Some a -> a | None -> 0);
          peer_addr = pcfg.remote_addr;
          router_id = pcfg.remote_addr;
          ebgp = (match pcfg.remote_asn with Some a -> a <> t.asn | None -> true);
        };
      session = None;
      up_cb = (fun () -> ());
      down_cb = (fun _ -> ());
      gr_sweep = None;
      admin_down = false;
    }
  in
  t.peer_list <- p :: t.peer_list;
  p

let start t = List.iter (fun p -> start_peer t p) (peers t)

let accept_incoming t conn =
  let quad = Tcp.quad conn in
  let remote = quad.Tcp.Quad.remote_addr in
  let matches p =
    Netsim.Addr.equal p.pcfg.remote_addr remote
    && (match p.pcfg.local_addr with
       | Some a -> Netsim.Addr.equal a quad.Tcp.Quad.local_addr
       | None -> true)
    && not p.admin_down
  in
  let adopt p =
    let session =
      Session.accept_passive t.stk (session_config t p.pcfg) ~conn
        ~cb:(fun s ev -> session_event t p s ev)
    in
    attach_session t p session
  in
  match List.find_opt (fun p -> matches p && p.session = None) (peers t) with
  | Some p -> adopt p
  | None -> (
      (* Connection collision (RFC 4271 §6.8): both sides opened
         simultaneously. The connection initiated by the speaker with the
         higher BGP identifier survives; since the peer's OPEN has not
         arrived yet, compare identifiers as addresses (router ids equal
         interface addresses throughout this codebase). *)
      match
        List.find_opt
          (fun p ->
            matches p
            &&
            match p.session with
            | Some s -> (
                match Session.state s with
                | Session.Connecting | Session.Open_sent -> true
                | Session.Idle | Session.Open_confirm | Session.Established
                | Session.Down ->
                    false)
            | None -> false)
          (peers t)
      with
      | Some p when Netsim.Addr.compare remote t.rid > 0 ->
          (* The peer outranks us: abandon our attempt, adopt theirs. *)
          (match p.session with Some s -> Session.stop s | None -> ());
          adopt p
      | Some _ ->
          (* We outrank the peer: drop their connection, ours proceeds. *)
          Tcp.abort conn
      | None -> Tcp.abort conn)

let create ?(profile = default_profile) ?(hooks = no_hooks) ?(listen_port = 179)
    ~stack ~local_asn ~router_id () =
  let t =
    {
      stk = stack;
      eng = Tcp.stack_engine stack;
      asn = local_asn;
      rid = router_id;
      profile;
      hooks;
      listen_port;
      vrf_tbl = Hashtbl.create 8;
      vrf_order = [];
      peer_list = [];
      busy_until = Time.zero;
      learned = 0;
      sent_updates = 0;
      sent_msgs = 0;
      last_tx = Time.zero;
      last_rx_apply = Time.zero;
    }
  in
  Tcp.listen stack ~port:listen_port (fun conn -> accept_incoming t conn);
  t

(* --- Local routes --------------------------------------------------------- *)

let originate t ~vrf ?attrs prefixes =
  add_vrf t vrf;
  let table = rib t ~vrf in
  let attrs =
    match attrs with Some a -> a | None -> Attrs.make ~next_hop:t.rid ()
  in
  let source = local_source t vrf in
  let changes =
    List.filter_map (fun pfx -> Rib.update table source pfx (Some attrs)) prefixes
  in
  apply_rib_changes t vrf changes ~exclude:source.Rib.key

let withdraw_origin t ~vrf prefixes =
  let table = rib t ~vrf in
  let source = local_source t vrf in
  let changes =
    List.filter_map (fun pfx -> Rib.update table source pfx None) prefixes
  in
  apply_rib_changes t vrf changes ~exclude:source.Rib.key

let restore_route t ~vrf source prefix attrs =
  add_vrf t vrf;
  let table = rib t ~vrf in
  (* Quiet install: no export, no checkpoint echo. *)
  ignore (Rib.update table source prefix (Some attrs))

let replay_update t p (u : Msg.update) = apply_update t p u

let resume_peer t pcfg ~repair ~negotiated ?(framer_seed = "") () =
  let p = add_peer t pcfg in
  let o = negotiated.Session.peer_open in
  p.source <-
    {
      p.source with
      Rib.peer_asn = o.Msg.asn;
      router_id = o.Msg.router_id;
      ebgp = o.Msg.asn <> t.asn;
    };
  let session =
    Session.resume t.stk (session_config t pcfg) ~repair ~negotiated
      ~framer_seed
      ~cb:(fun s ev -> session_event t p s ev)
  in
  attach_session t p session;
  p
