type source = {
  key : string;
  peer_asn : int;
  peer_addr : Netsim.Addr.t;
  router_id : Netsim.Addr.t;
  ebgp : bool;
}

type path = { source : source; attrs : Attrs.t; stale : bool }

type change =
  | Best_changed of Netsim.Addr.prefix * path
  | Best_withdrawn of Netsim.Addr.prefix

let m_rib_changes = Telemetry.Registry.counter "bgp.rib_changes"
let m_rib_withdrawals = Telemetry.Registry.counter "bgp.rib_withdrawals"

type entry = { mutable paths : path list; mutable best : path option }

module PrefixTbl = Hashtbl.Make (struct
  type t = Netsim.Addr.prefix

  let equal = Netsim.Addr.equal_prefix
  let hash (p : Netsim.Addr.prefix) = Hashtbl.hash (Netsim.Addr.to_int p.base, p.len)
end)

type t = { table : entry PrefixTbl.t; mutable npaths : int }

let create () = { table = PrefixTbl.create 1024; npaths = 0 }

let local_pref_of p = match p.attrs.Attrs.local_pref with Some lp -> lp | None -> 100

let neighbor_as p =
  match p.attrs.Attrs.as_path with
  | Attrs.Seq (asn :: _) :: _ -> Some asn
  | _ -> None

(* Top-level, not local to [better]: these run once per path comparison
   inside every best-path fold. *)
let med_of p = match p.attrs.Attrs.med with Some m -> m | None -> 0
let ebgp_rank p = if p.source.ebgp then 0 else 1

(* RFC 4271 §9.1.2.2, as a strict "a preferred over b" relation. *)
let better a b =
  let cmp =
    let c = Int.compare (local_pref_of b) (local_pref_of a) in
    if c <> 0 then c
    else
      let c =
        Int.compare (Attrs.as_path_length a.attrs) (Attrs.as_path_length b.attrs)
      in
      if c <> 0 then c
      else
        let c =
          Int.compare
            (Attrs.origin_rank a.attrs.Attrs.origin)
            (Attrs.origin_rank b.attrs.Attrs.origin)
        in
        if c <> 0 then c
        else
          let med_cmp =
            (* MED comparable only between paths from the same
               neighbouring AS; missing MED is best (0). *)
            match (neighbor_as a, neighbor_as b) with
            | Some na, Some nb when na = nb ->
                Int.compare (med_of a) (med_of b)
            | _ -> 0
          in
          if med_cmp <> 0 then med_cmp
          else
            let c = Int.compare (ebgp_rank a) (ebgp_rank b) in
            if c <> 0 then c
            else
              let c =
                Netsim.Addr.compare a.source.router_id b.source.router_id
              in
              if c <> 0 then c
              else Netsim.Addr.compare a.source.peer_addr b.source.peer_addr
  in
  cmp < 0

(* Top-level for the same reason as [med_of]: the fold runs once per
   path of every recompute (h1 budget). *)
let pick_better acc p = if better p acc then p else acc

let select_best paths =
  match paths with
  | [] -> None
  | first :: rest -> Some (List.fold_left pick_better first rest)

let same_best a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y ->
      String.equal x.source.key y.source.key && Attrs.equal x.attrs y.attrs
  | _ -> false

let entry_of t prefix =
  match PrefixTbl.find_opt t.table prefix with
  | Some e -> e
  | None ->
      let e = { paths = []; best = None } in
      PrefixTbl.replace t.table prefix e;
      e

let recompute t prefix entry =
  let old_best = entry.best in
  let new_best = select_best entry.paths in
  entry.best <- new_best;
  if entry.paths = [] then PrefixTbl.remove t.table prefix;
  if same_best old_best new_best then None
  else
    match new_best with
    | Some p ->
        Telemetry.Registry.incr m_rib_changes;
        Some (Best_changed (prefix, p))
    | None ->
        Telemetry.Registry.incr m_rib_withdrawals;
        Some (Best_withdrawn prefix)

(* Remove the paths held by [key], sharing the unchanged suffix and
   returning the input list itself when the key is absent — the common
   case for a fresh announcement, where [List.filter] would have built
   a closure and copied the whole list for nothing (h1 budget). *)
let rec remove_key key = function
  | [] -> []
  | p :: rest as l ->
      if String.equal p.source.key key then remove_key key rest
      else
        let rest' = remove_key key rest in
        if rest' == rest then l else p :: rest'

let update t source prefix attrs =
  let entry = entry_of t prefix in
  let without = remove_key source.key entry.paths in
  let had = without != entry.paths in
  (match attrs with
  | Some attrs ->
      entry.paths <- { source; attrs; stale = false } :: without;
      if not had then t.npaths <- t.npaths + 1
  | None ->
      entry.paths <- without;
      if had then t.npaths <- t.npaths - 1);
  recompute t prefix entry

let best t prefix =
  match PrefixTbl.find_opt t.table prefix with
  | Some e -> e.best
  | None -> None

let candidates t prefix =
  match PrefixTbl.find_opt t.table prefix with
  | None -> []
  | Some e -> List.sort (fun a b -> if better a b then -1 else 1) e.paths

let size t = PrefixTbl.length t.table
let path_count t = t.npaths

(* Every whole-table traversal goes through [sorted_entries]: ascending
   prefix order, so adj-out update batches, digests, and telemetry are
   independent of the table's insertion history (lint pass d1). *)
let collect_entry prefix e acc = (prefix, e) :: acc
let cmp_entry (a, _) (b, _) = Netsim.Addr.compare_prefix a b

let sorted_entries t =
  (* lint: allow d1 — the RIB's single collect-then-sort point; all other traversals use it *)
  List.sort cmp_entry (PrefixTbl.fold collect_entry t.table [])

let fold_best t ~init ~f =
  List.fold_left
    (fun acc (prefix, e) ->
      match e.best with Some p -> f acc prefix p | None -> acc)
    init (sorted_entries t)

let best_prefixes ?source_key t =
  fold_best t ~init:[] ~f:(fun acc prefix path ->
      match source_key with
      | Some k when not (String.equal path.source.key k) -> acc
      | _ -> Netsim.Addr.prefix_to_string prefix :: acc)
  |> List.sort String.compare

(* FNV-1a over the sorted best-path prefix strings: a cheap
   order-insensitive fingerprint for comparing two tables' coverage
   (attributes deliberately excluded — AS paths legitimately differ
   between the advertising and the learning side). *)
let fnv_prime = 0x100000001b3L
let fnv_mix h byte = Int64.mul (Int64.logxor h (Int64.of_int byte)) fnv_prime

let rec fnv_string h s i =
  if i >= String.length s then h
  else fnv_string (fnv_mix h (Char.code (String.unsafe_get s i))) s (i + 1)

let rec fnv_lines h = function
  | [] -> h
  | p :: rest -> fnv_lines (fnv_mix (fnv_string h p 0) (Char.code '\n')) rest

let hex_digits = "0123456789abcdef"

(* [%016Lx] without the Printf machinery (h1 budget). *)
let hex16 v =
  let out = Bytes.create 16 in
  for i = 0 to 15 do
    let nibble =
      Int64.to_int (Int64.shift_right_logical v ((15 - i) * 4)) land 0xF
    in
    Bytes.unsafe_set out i (String.unsafe_get hex_digits nibble)
  done;
  Bytes.unsafe_to_string out

let digest ?source_key t =
  hex16 (fnv_lines 0xcbf29ce484222325L (best_prefixes ?source_key t))

let transform_source t ~key ~f =
  (* Apply [f] to each (prefix, entry) holding a path from [key], in
     ascending prefix order; collect best-path changes. *)
  let touched =
    List.filter
      (fun (_, e) ->
        List.exists (fun p -> String.equal p.source.key key) e.paths)
      (sorted_entries t)
  in
  List.filter_map (fun (prefix, e) -> f prefix e) touched

let remove_source t ~key =
  transform_source t ~key ~f:(fun prefix e ->
      let before = List.length e.paths in
      e.paths <-
        List.filter (fun p -> not (String.equal p.source.key key)) e.paths;
      t.npaths <- t.npaths - (before - List.length e.paths);
      recompute t prefix e)

let mark_source_stale t ~key =
  let marked = ref 0 in
  List.iter
    (fun (_, e) ->
      e.paths <-
        List.map
          (fun p ->
            if String.equal p.source.key key && not p.stale then begin
              incr marked;
              { p with stale = true }
            end
            else p)
          e.paths;
      (* The best pointer may reference a replaced record; refresh it
         without reporting a change (attrs are unchanged). *)
      e.best <- select_best e.paths)
    (sorted_entries t);
  !marked

let sweep_stale t ~key =
  transform_source t ~key ~f:(fun prefix e ->
      let before = List.length e.paths in
      e.paths <-
        List.filter
          (fun p -> not (String.equal p.source.key key && p.stale))
          e.paths;
      t.npaths <- t.npaths - (before - List.length e.paths);
      recompute t prefix e)

let stale_count t ~key =
  List.fold_left
    (fun acc (_, e) ->
      acc
      + List.length
          (List.filter
             (fun p -> String.equal p.source.key key && p.stale)
             e.paths))
    0 (sorted_entries t)
