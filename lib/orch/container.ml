open Sim
open Netsim

type state = Created | Booting | Running | Failed | Stopped

let m_booted = Telemetry.Registry.counter "orch.containers_booted"
let m_failed = Telemetry.Registry.counter "orch.containers_failed"
let m_stopped = Telemetry.Registry.counter "orch.containers_stopped"


let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Created -> "created"
    | Booting -> "booting"
    | Running -> "running"
    | Failed -> "failed"
    | Stopped -> "stopped")

type t = {
  cid : string;
  hname : string;
  cnode : Node.t;
  veth : Addr.t;
  host_route : Addr.t -> unit;
  bspan : Time.span;
  mutable st : state;
  mutable hooks : (t -> unit) list;
  mutable vips : Addr.t list;
  mutable mem : float;
  mutable cpu : float;
}

let internal_make ~id ~host_name ~node ~veth_addr ~host_route ~boot_span =
  {
    cid = id;
    hname = host_name;
    cnode = node;
    veth = veth_addr;
    host_route;
    bspan = boot_span;
    st = Created;
    hooks = [];
    vips = [];
    mem = 250.0;
    cpu = 0.055;
  }

let id t = t.cid
let node t = t.cnode
let host_name t = t.hname
let state t = t.st
let veth_addr t = t.veth
let boot_span t = t.bspan
let on_running t f = t.hooks <- t.hooks @ [ f ]
let service_addrs t = t.vips

let assign_service_addr t vip =
  if not (List.exists (Addr.equal vip) t.vips) then begin
    t.vips <- t.vips @ [ vip ];
    Node.add_address t.cnode vip;
    t.host_route vip
  end

let set_resources t ~mem_mb ~cpu_pct =
  t.mem <- mem_mb;
  t.cpu <- cpu_pct

let mem_mb t = t.mem
let cpu_pct t = t.cpu

let boot t =
  match t.st with
  | Booting | Running -> ()
  | Created | Failed | Stopped ->
      t.st <- Booting;
      let eng = Node.engine t.cnode in
      ignore
        (Engine.schedule_after eng ~label:"orch.boot" t.bspan (fun () ->
             if t.st = Booting then begin
               Node.set_up t.cnode true;
               Rpc.serve_ping (Rpc.endpoint t.cnode) ~service:"health";
               t.st <- Running;
               Telemetry.Registry.incr m_booted;
               if Telemetry.Gate.on () then
                 Telemetry.Bus.emit eng
                   (Telemetry.Event.Container_state
                      { id = t.cid; host = t.hname; state = "running" });
               List.iter (fun f -> f t) t.hooks
             end))

let fail t =
  if t.st <> Stopped then begin
    t.st <- Failed;
    Telemetry.Registry.incr m_failed;
    if Telemetry.Gate.on () then
      Telemetry.Bus.emit (Node.engine t.cnode)
        (Telemetry.Event.Container_state
           { id = t.cid; host = t.hname; state = "failed" });
    Node.set_up t.cnode false
  end

let stop t =
  if t.st <> Stopped then begin
    Telemetry.Registry.incr m_stopped;
    if Telemetry.Gate.on () then
      Telemetry.Bus.emit (Node.engine t.cnode)
        (Telemetry.Event.Container_state
           { id = t.cid; host = t.hname; state = "stopped" })
  end;
  t.st <- Stopped;
  Node.set_up t.cnode false

let kill_network t = Node.set_up t.cnode false
