open Sim
open Netsim

type failure_kind =
  | App_failure
  | Container_failure
  | Host_failure
  | Host_network_failure

let m_failures = Telemetry.Registry.counter "orch.failures_detected"
let m_migrations = Telemetry.Registry.counter "orch.migrations"
let m_hosts_failed = Telemetry.Registry.counter "orch.hosts_failed"

let pp_failure_kind fmt k =
  Format.pp_print_string fmt
    (match k with
    | App_failure -> "application"
    | Container_failure -> "container"
    | Host_failure -> "host-machine"
    | Host_network_failure -> "host-network")

type Rpc.body += Report_app_failure of string

type config = {
  grpc_interval : Time.span;
  grpc_timeout : Time.span;
  confirm_timer : Time.span;
  initiate_container : Time.span;
  initiate_host : Time.span;
  ipsla_timeout : Time.span;
  agent_timeout : Time.span;
  host_ctl_timeout : Time.span;
  reprobe_timeout : Time.span;
}

let default_config =
  {
    grpc_interval = Time.ms 300;
    grpc_timeout = Time.ms 150;
    confirm_timer = Time.sec 3;
    initiate_container = Time.ms 100;
    initiate_host = Time.ms 200;
    ipsla_timeout = Time.ms 150;
    agent_timeout = Time.ms 400;
    host_ctl_timeout = Time.ms 300;
    reprobe_timeout = Time.ms 300;
  }

type managed = {
  mid : string;
  mutable cont : Container.t;
  mutable phase : [ `Healthy | `Suspect | `Migrating ];
  mutable hb_timer : Engine.timer option;
  (* Bumped on every transition into [`Migrating]. Asynchronous
     continuations (the store-unreachable wait chain, the migrator's
     [done_]) capture the epoch at arm time and become no-ops when it
     has moved on — a planned migration that supersedes a deferred
     failure migration kills the parked chain instead of letting it
     double-schedule the instance after the store heals. *)
  mutable mig_epoch : int;
}

type host_entry = {
  host : Host.t;
  mutable hphase : [ `Healthy | `Confirming | `Failed ];
  mutable hregion : string option;
}

(* Liveness of the replicated store, maintained by {!register_store}.
   A store outage is NOT an instance failure: migrating while the store
   is unreachable would hand the replacement an empty state and reset
   the peer — exactly what NSR exists to prevent — so migrations are
   deferred until the store answers again. *)
type store_probe = {
  saddr : Addr.t;
  mutable sok : bool;
  mutable down_since : Time.t option;
}

type t = {
  cname : string;
  cnode : Node.t;
  caddr : Addr.t;
  eng : Engine.t;
  cfg : config;
  ep : Rpc.endpoint;
  tr : Trace.t;
  mutable hosts : host_entry list;
  mutable agents : Agent.t list;
  managed_tbl : (string, managed) Hashtbl.t;
  (* Host name -> ids of managed containers currently living there.
     Maintained on [manage] and on every migration completion, so a
     host-failure sweep touches only that host's residents instead of
     rescanning the whole fleet ([declare_host_failed] used to fold the
     full table — O(instances) per failed host). *)
  host_index : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  (* Failure migrations in flight or deferred (planned migrations are
     not counted): the fleet upgrade planner pauses its waves while
     this is non-zero. *)
  mutable n_fail_migrating : int;
  mutable migrator :
    reason:failure_kind ->
    id:string ->
    failed:Container.t ->
    done_:(Container.t -> unit) ->
    unit;
  mutable quarantine : string list;
  mutable store_probe : store_probe option;
}

let node t = t.cnode
let addr t = t.caddr
let trace t = t.tr
let report_endpoint_service = "report"
let quarantined t = t.quarantine

let managed_container t ~id =
  match Hashtbl.find_opt t.managed_tbl id with
  | Some m -> Some m.cont
  | None -> None

let set_migrator t f = t.migrator <- f

let host_entry_of t name =
  List.find_opt (fun e -> String.equal (Host.name e.host) name) t.hosts

(* --- Placement index ------------------------------------------------------ *)

let index_add t ~host id =
  let set =
    match Hashtbl.find_opt t.host_index host with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.replace t.host_index host s;
        s
  in
  Hashtbl.replace set id ()

let index_remove t ~host id =
  match Hashtbl.find_opt t.host_index host with
  | Some s -> Hashtbl.remove s id
  | None -> ()

let index_move t m replacement =
  let old_host = Container.host_name m.cont in
  let new_host = Container.host_name replacement in
  if not (String.equal old_host new_host) then begin
    index_remove t ~host:old_host m.mid;
    index_add t ~host:new_host m.mid
  end

let managed_on t host =
  match Hashtbl.find_opt t.host_index host with
  | Some s -> Hashtbl.length s
  | None -> 0

let failure_migrations_active t = t.n_fail_migrating

(* --- Migration driver ---------------------------------------------------- *)

let store_reachable t =
  match t.store_probe with None -> true | Some p -> p.sok

let proceed_migration t m reason =
  begin
    let epoch = m.mig_epoch in
    let initiate_delay =
      match reason with
      | Host_failure | Host_network_failure -> t.cfg.initiate_host
      | App_failure | Container_failure -> t.cfg.initiate_container
    in
    Telemetry.Registry.incr m_failures;
    Telemetry.Bus.emit ~legacy:t.tr t.eng
      (Telemetry.Event.Failure_detected
         {
           id = m.mid;
           kind = Format.asprintf "%a" pp_failure_kind reason;
         });
    ignore
      (Engine.schedule_after t.eng ~label:"orch.migrate" initiate_delay
         (fun () ->
           if m.mig_epoch = epoch then begin
             Telemetry.Bus.emit ~legacy:t.tr t.eng
               (Telemetry.Event.Migration_initiated { id = m.mid });
             t.migrator ~reason ~id:m.mid ~failed:m.cont
               ~done_:(fun replacement ->
                 if m.mig_epoch = epoch then begin
                   Telemetry.Registry.incr m_migrations;
                   Telemetry.Bus.emit ~legacy:t.tr t.eng
                     (Telemetry.Event.Migration_done
                        {
                          id = m.mid;
                          host = Container.host_name replacement;
                          container = Container.id replacement;
                        });
                   index_move t m replacement;
                   m.cont <- replacement;
                   m.phase <- `Healthy;
                   t.n_fail_migrating <- t.n_fail_migrating - 1
                 end)
           end))
  end

let start_migration t m reason =
  if m.phase <> `Migrating then begin
    m.phase <- `Migrating;
    m.mig_epoch <- m.mig_epoch + 1;
    t.n_fail_migrating <- t.n_fail_migrating + 1;
    let epoch = m.mig_epoch in
    if store_reachable t then proceed_migration t m reason
    else begin
      (* Store-unreachable, not instance-dead: defer until the store
         answers. The phase flip above parks the heartbeat ticks, so a
         store outage cannot cascade into spurious failovers. Each
         rearm re-checks the epoch: if a planned migration (or any
         newer transition) took the instance over while we were parked,
         this chain is stale and must die — proceeding would migrate a
         healthy instance a second time. *)
      Telemetry.Bus.emit ~legacy:t.tr t.eng
        (Telemetry.Event.Migration_deferred
           { id = m.mid; reason = "store-unreachable" });
      let rec wait () =
        ignore
          (Engine.schedule_after t.eng ~label:"orch.migrate" t.cfg.grpc_interval
             (fun () ->
               if m.mig_epoch = epoch then
                 if store_reachable t then proceed_migration t m reason
                 else wait ()))
      in
      wait ()
    end
  end

(* --- Host-level localization (E3/E5) ------------------------------------- *)

let verify_host t (he : host_entry) k =
  (* Independent measurements: our probe and the agent's IP SLA. All must
     fail for the host to be presumed dead. *)
  let target = Host.addr he.host in
  Rpc.ping t.ep ~timeout:t.cfg.ipsla_timeout ~dst:target ~service:"ipsla"
    (fun own_ok ->
      if own_ok then k false
      else
        match t.agents with
        | [] -> k true
        | agent :: _ ->
            Rpc.call t.ep ~timeout:t.cfg.agent_timeout ~dst:(Agent.addr agent)
              ~service:"agent_ctl" (Agent.Agent_check target) (function
              | Ok (Agent.Agent_check_result ok) -> k (not ok)
              | Ok _ | Error _ ->
                  (* Agent unreachable: fall back to our own (failed)
                     measurement. *)
                  k true))

let declare_host_failed t (he : host_entry) =
  he.hphase <- `Failed;
  t.quarantine <- Host.name he.host :: t.quarantine;
  Telemetry.Registry.incr m_hosts_failed;
  Telemetry.Bus.emit ~legacy:t.tr t.eng
    (Telemetry.Event.Host_failed { host = Host.name he.host });
  (* Best-effort fence; unreachable hosts fence themselves via the
     lease. *)
  Rpc.call t.ep ~timeout:t.cfg.host_ctl_timeout ~dst:(Host.addr he.host)
    ~service:"host_ctl" Host.Host_fence (fun _ -> ());
  (* Migrate every managed container living there, in name order so the
     replayed migration sequence is deterministic. The host index keeps
     this sweep proportional to the residents of the failed host, not
     to the fleet. *)
  match Hashtbl.find_opt t.host_index (Host.name he.host) with
  | None -> ()
  | Some residents ->
      Det.iter_sorted ~compare:String.compare
        (fun id () ->
          match Hashtbl.find_opt t.managed_tbl id with
          | Some m
            when String.equal (Container.host_name m.cont) (Host.name he.host)
            ->
              start_migration t m Host_failure
          | Some _ | None -> ())
        residents

let suspect_host t (he : host_entry) =
  if he.hphase = `Healthy then begin
    he.hphase <- `Confirming;
    Telemetry.Bus.emit ~legacy:t.tr t.eng
      (Telemetry.Event.Host_suspect { host = Host.name he.host });
    (* The 3-second confirmation timer starts at suspicion; verification
       runs concurrently and can clear the suspicion early, so transient
       network jitter never triggers migration (§3.3.3). *)
    verify_host t he (fun dead ->
        if not dead then he.hphase <- `Healthy);
    ignore
      (Engine.schedule_after t.eng ~label:"orch.confirm" t.cfg.confirm_timer
         (fun () ->
           if he.hphase = `Confirming then
             verify_host t he (fun still_dead ->
                 if still_dead then declare_host_failed t he
                 else he.hphase <- `Healthy)))
  end

(* --- Container heartbeats (E2/E4 detection) ------------------------------ *)

let check_container_via_host t m k =
  match host_entry_of t (Container.host_name m.cont) with
  | None -> k `Host_unreachable
  | Some he ->
      Rpc.call t.ep ~timeout:t.cfg.host_ctl_timeout ~dst:(Host.addr he.host)
        ~service:"host_ctl"
        (Host.Host_check_container (Container.id m.cont)) (function
        | Ok (Host.Host_container_state st) -> k (`Host_says st)
        | Ok _ -> k (`Host_says "unknown")
        | Error _ -> k `Host_unreachable)

(* Suspicion-resolving callbacks arrive asynchronously (RPC timeouts) and
   may land after a migration has already started from another detection
   path (host localization, app report). They must only downgrade
   [`Suspect] — clobbering [`Migrating] back to [`Healthy] would re-arm
   the heartbeat ticks mid-migration and let a second, faster migration
   race the first one into a split brain. *)
let resolve_suspect m = if m.phase = `Suspect then m.phase <- `Healthy

let heartbeat_miss t m =
  if m.phase = `Healthy then begin
    m.phase <- `Suspect;
    check_container_via_host t m (function
      | `Host_says st -> (
          resolve_suspect m;
          if st = "failed" || st = "stopped" || st = "unknown" then
            start_migration t m Container_failure
          else
            (* The host says the container runs, yet its heartbeat was
               missed. Re-probe before concluding a virtual-network
               failure (E4): the original miss may have straddled a
               transient glitch. *)
            Rpc.ping t.ep ~timeout:t.cfg.reprobe_timeout
              ~dst:(Container.veth_addr m.cont) ~service:"health" (fun ok ->
                if not ok then
                  match host_entry_of t (Container.host_name m.cont) with
                  | Some he ->
                      Rpc.call t.ep ~timeout:t.cfg.host_ctl_timeout
                        ~dst:(Host.addr he.host) ~service:"host_ctl"
                        (Host.Host_kill_container (Container.id m.cont))
                        (fun _ -> start_migration t m Container_failure)
                  | None -> start_migration t m Container_failure))
      | `Host_unreachable -> (
          resolve_suspect m;
          (* Escalate to host-level localization. *)
          match host_entry_of t (Container.host_name m.cont) with
          | Some he -> suspect_host t he
          | None -> ()))
  end

let start_heartbeats t m =
  let tick () =
    match m.phase with
    | `Migrating -> ()
    | `Healthy | `Suspect ->
        let target = Container.veth_addr m.cont in
        Rpc.ping t.ep ~timeout:t.cfg.grpc_timeout ~dst:target
          ~service:"health" (fun ok ->
            if not ok then heartbeat_miss t m)
  in
  m.hb_timer <-
    Some
      (Engine.every t.eng ~label:"orch.heartbeat" ~jitter:0.1
         t.cfg.grpc_interval tick)

let begin_planned t ~id =
  match Hashtbl.find_opt t.managed_tbl id with
  | Some m ->
      (* Superseding an in-flight or deferred failure migration: the
         epoch bump orphans its wait chain and callbacks (they check
         the epoch before acting), so balance its in-flight count
         here. *)
      if m.phase = `Migrating then
        t.n_fail_migrating <- t.n_fail_migrating - 1;
      m.phase <- `Migrating;
      m.mig_epoch <- m.mig_epoch + 1
  | None -> ()

let end_planned t ~id cont =
  match Hashtbl.find_opt t.managed_tbl id with
  | Some m ->
      index_move t m cont;
      m.cont <- cont;
      m.phase <- `Healthy
  | None -> ()

let manage t ~id cont =
  let m = { mid = id; cont; phase = `Healthy; hb_timer = None; mig_epoch = 0 } in
  Hashtbl.replace t.managed_tbl id m;
  index_add t ~host:(Container.host_name cont) id;
  start_heartbeats t m

(* --- Host heartbeats (feeds the lease and E3 detection) ------------------- *)

let register_host ?region t host =
  let he = { host; hphase = `Healthy; hregion = region } in
  t.hosts <- he :: t.hosts;
  ignore
    (Engine.every t.eng ~label:"orch.host_mon" ~jitter:0.1 t.cfg.grpc_interval
       (fun () ->
         if he.hphase <> `Failed then
           Rpc.ping t.ep ~timeout:t.cfg.grpc_timeout ~dst:(Host.addr host)
             ~service:"health" (fun ok ->
               if (not ok) && he.hphase = `Healthy then suspect_host t he)))

let register_agent t agent = t.agents <- agent :: t.agents

let set_host_region t ~host ~region =
  match host_entry_of t host with
  | Some he -> he.hregion <- Some region
  | None -> ()

let host_region t ~host =
  match host_entry_of t host with Some he -> he.hregion | None -> None

(* Region-aware anti-affinity placement: healthy hosts only (probe
   phase healthy, up, unfenced, not quarantined), restricted to
   [region] when given, never one of [avoid] (the failed host and the
   hosts carrying sibling replicas). Least-loaded wins, host name as
   the tie-break, so the choice is a pure function of controller state
   and replays deterministically. Returns [None] when no host
   qualifies — the caller defers rather than thrashing. *)
let pick_host t ?region ?(avoid = []) () =
  let eligible he =
    he.hphase = `Healthy
    && Host.is_up he.host
    && (not (Host.is_fenced he.host))
    && (not (List.mem (Host.name he.host) t.quarantine))
    && (not (List.mem (Host.name he.host) avoid))
    &&
    match region with
    | None -> true
    | Some r -> (
        match he.hregion with Some r' -> String.equal r r' | None -> false)
  in
  let best =
    List.fold_left
      (fun acc he ->
        if not (eligible he) then acc
        else
          let name = Host.name he.host in
          let load = managed_on t name in
          match acc with
          | Some (bload, bname, _)
            when bload < load || (bload = load && String.compare bname name < 0)
            ->
              acc
          | _ -> Some (load, name, he.host))
      None t.hosts
  in
  match best with Some (_, _, h) -> Some h | None -> None

(* The store is probed like a host, but on the ["kv_health"] service the
   store process answers only while alive — so a crash, a partition and
   a dead node all read as unreachable. One missed probe flips the flag:
   for migration deferral a false "down" merely delays initiation by one
   probe interval, which is the safe direction. *)
let register_store t ~addr =
  let p = { saddr = addr; sok = true; down_since = None } in
  t.store_probe <- Some p;
  ignore
    (Engine.every t.eng ~label:"orch.store_probe" ~jitter:0.1
       t.cfg.grpc_interval (fun () ->
         Rpc.ping t.ep ~timeout:t.cfg.grpc_timeout ~dst:p.saddr
           ~service:"kv_health" (fun ok ->
             if ok then begin
               (match p.down_since with
               | Some since ->
                   Telemetry.Bus.emit t.eng
                     (Telemetry.Event.Store_recovered
                        {
                          node = t.cname;
                          outage_s =
                            Time.to_sec_f (Time.diff (Engine.now t.eng) since);
                        })
               | None -> ());
               p.sok <- true;
               p.down_since <- None
             end
             else if p.sok then begin
               p.sok <- false;
               p.down_since <- Some (Engine.now t.eng);
               Telemetry.Bus.emit t.eng
                 (Telemetry.Event.Store_unreachable { node = t.cname })
             end)))

let release_quarantine t host =
  Host.reset host;
  (match host_entry_of t (Host.name host) with
  | Some he -> he.hphase <- `Healthy
  | None -> ());
  t.quarantine <-
    List.filter (fun n -> not (String.equal n (Host.name host))) t.quarantine

let create net ~fabric ?(config = default_config) cname =
  let cnode = Network.add_node net cname in
  let _, fabric_side, ctrl_side =
    Network.connect net ~delay:(Time.us 20) fabric cnode
  in
  Node.add_route cnode (Addr.prefix_of_string "0.0.0.0/0") fabric_side;
  let t =
    {
      cname;
      cnode;
      caddr = ctrl_side;
      eng = Network.engine net;
      cfg = config;
      ep = Rpc.endpoint cnode;
      tr = Trace.create ();
      hosts = [];
      agents = [];
      managed_tbl = Hashtbl.create 32;
      host_index = Hashtbl.create 32;
      n_fail_migrating = 0;
      migrator = (fun ~reason:_ ~id:_ ~failed:_ ~done_:_ -> ());
      quarantine = [];
      store_probe = None;
    }
  in
  Rpc.serve t.ep ~service:report_endpoint_service (fun ~src:_ body ~reply ->
      (match body with
      | Report_app_failure id -> (
          match Hashtbl.find_opt t.managed_tbl id with
          | Some m -> start_migration t m App_failure
          | None -> ())
      | _ -> ());
      reply Rpc.Pong);
  t
