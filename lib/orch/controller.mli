(** The TKE-style controller (§3.2.2, §3.3.3).

    Logically centralized: it holds the mapping from managed BGP
    containers to hosts, runs the gRPC heartbeat channels, localizes
    failures using multiple independent measurements, and drives NSR
    migration through a pluggable migrator (installed by the TENSOR
    layer).

    Failure localization implements the paper's decision procedure:

    - {e application failures} (E1) are reported instantly by the
      in-container monitor via the ["report"] RPC service;
    - {e container failures} (E2/E4) are detected by a gRPC heartbeat
      miss cross-checked against the host's process monitor
      ([Host_check_container]);
    - {e host machine/network failures} (E3/E5) require every
      measurement to fail — the controller's own probe, the agent's IP
      SLA, and a second host's IP SLA — and are confirmed by a timer
      (default 3 s) before migration, so transient jitter never triggers
      a move. Once a host is declared failed it is fenced and quarantined
      until a manual reset.

    Every step is timestamped in a {!Sim.Trace.t} with categories
    ["detect"], ["initiate"], ["migrate"] and ["recovered"] — the raw
    material of Table 1. *)

type failure_kind =
  | App_failure
  | Container_failure
  | Host_failure
  | Host_network_failure

val pp_failure_kind : Format.formatter -> failure_kind -> unit

type Netsim.Rpc.body += Report_app_failure of string  (** container id *)

type config = {
  grpc_interval : Sim.Time.span;  (** Heartbeat period (default 200 ms). *)
  grpc_timeout : Sim.Time.span;  (** Heartbeat reply timeout (100 ms). *)
  confirm_timer : Sim.Time.span;
      (** Host-level confirmation delay (default 3 s, §3.3.3). *)
  initiate_container : Sim.Time.span;
      (** Migration preparation for one container (100 ms). *)
  initiate_host : Sim.Time.span;
      (** Preparation when a whole host moves (200 ms). *)
  ipsla_timeout : Sim.Time.span;
      (** The controller's own IP SLA probe of a suspect host (150 ms). *)
  agent_timeout : Sim.Time.span;
      (** Cross-check via the agent's IP SLA (400 ms). *)
  host_ctl_timeout : Sim.Time.span;
      (** Host control-plane calls: fence, container check, kill
          (300 ms). *)
  reprobe_timeout : Sim.Time.span;
      (** Direct container re-probe before declaring a virtual-network
          failure (300 ms). *)
}

val default_config : config

type t

val create :
  Netsim.Network.t -> fabric:Netsim.Node.t -> ?config:config -> string -> t

val node : t -> Netsim.Node.t
val addr : t -> Netsim.Addr.t
val trace : t -> Sim.Trace.t

val register_host : ?region:string -> t -> Host.t -> unit
(** Starts heartbeating the host (which also feeds its fencing lease).
    [?region] tags the host for region-aware placement ({!pick_host});
    it can also be assigned later with {!set_host_region}. *)

val set_host_region : t -> host:string -> region:string -> unit
(** (Re)assigns a registered host to a region. Unknown hosts are
    ignored. *)

val host_region : t -> host:string -> string option

val pick_host :
  t -> ?region:string -> ?avoid:string list -> unit -> Host.t option
(** Region-aware anti-affinity placement: the least-loaded healthy host
    (up, unfenced, not quarantined, probe phase healthy), restricted to
    [region] when given and never one of [avoid] (failed host, hosts
    carrying sibling replicas). Host name breaks load ties, so the
    choice is deterministic. [None] when no host qualifies — callers
    must defer (emitting [Migration_deferred]) rather than thrash. *)

val failure_migrations_active : t -> int
(** Failure-triggered migrations currently in flight or deferred
    (planned migrations are not counted). The fleet upgrade-wave
    planner pauses while this is non-zero. *)

val register_agent : t -> Agent.t -> unit
(** The agent used for IP SLA cross-checks. *)

val register_store : t -> addr:Netsim.Addr.t -> unit
(** Starts probing the replicated store's ["kv_health"] service on the
    heartbeat cadence. While the store is unreachable the controller
    distinguishes store-down from instance-dead: migrations are deferred
    (emitting [Migration_deferred]) rather than initiated, because a
    takeover without a readable store would hand the replacement an
    empty state and reset the peer. [Store_unreachable] /
    [Store_recovered] events mark the outage window. *)

val store_reachable : t -> bool
(** [true] when no store is registered or the last probe answered. *)

val set_migrator :
  t ->
  (reason:failure_kind ->
  id:string ->
  failed:Container.t ->
  done_:(Container.t -> unit) ->
  unit) ->
  unit
(** Installs the migration executor (the TENSOR layer). The executor
    must eventually call [done_ new_container]; the controller then
    resumes monitoring on the replacement instance. *)

val manage : t -> id:string -> Container.t -> unit
(** Puts a container under heartbeat monitoring and migration
    management. *)

val managed_container : t -> id:string -> Container.t option

val begin_planned : t -> id:string -> unit
(** Suspends failure handling for a service while a planned (proactive)
    migration runs, so the deliberate death of the old primary is not
    mistaken for a failure. *)

val end_planned : t -> id:string -> Container.t -> unit
(** Completes a planned migration: monitoring resumes on the replacement
    instance. *)

val report_endpoint_service : string
(** ["report"] — where in-container monitors send
    {!Report_app_failure}. *)

val quarantined : t -> string list
(** Names of hosts declared failed and awaiting manual reset. *)

val release_quarantine : t -> Host.t -> unit
(** Manual reset: {!Host.reset} plus removal from the quarantine list. *)
