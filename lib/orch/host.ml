open Sim
open Netsim

(* Control-plane RPC vocabulary between controller and host. *)
type Rpc.body +=
  | Host_check_container of string
  | Host_container_state of string
  | Host_kill_container of string
  | Host_fence
  | Host_ack

type t = {
  hname : string;
  hnet : Network.t;
  hnode : Node.t;
  fabric : Node.t;
  link : Link.t;
  haddr : Addr.t;
  container_boot : Time.span;
  lease : Time.span;
  eng : Engine.t;
  mutable cts : Container.t list;
  mutable fenced : bool;
  mutable up : bool;
  mutable last_hb : Time.t option;
  mutable next_subnet : int;
}

let name t = t.hname
let node t = t.hnode
let addr t = t.haddr
let uplink t = t.link
let containers t = List.rev t.cts
let is_up t = t.up
let is_fenced t = t.fenced

let find_container t id =
  List.find_opt (fun c -> String.equal (Container.id c) id) t.cts

let heartbeat_received t = t.last_hb <- Some (Engine.now t.eng)

let last_heartbeat t =
  match t.last_hb with Some x -> x | None -> Time.zero

let fence t =
  if not t.fenced then begin
    t.fenced <- true;
    List.iter Container.kill_network t.cts
  end

let reset t =
  t.fenced <- false;
  t.last_hb <- None

let serve_control t =
  let ep = Rpc.endpoint t.hnode in
  Rpc.serve ep ~service:"health" (fun ~src:_ body ~reply ->
      heartbeat_received t;
      match body with Rpc.Ping -> reply Rpc.Pong | _ -> reply Rpc.Pong);
  Rpc.serve_ping ep ~service:"ipsla";
  Rpc.serve ep ~service:"host_ctl" (fun ~src:_ body ~reply ->
      match body with
      | Host_check_container id ->
          let st =
            match find_container t id with
            | Some c -> Format.asprintf "%a" Container.pp_state (Container.state c)
            | None -> "unknown"
          in
          reply (Host_container_state st)
      | Host_kill_container id ->
          (match find_container t id with
          | Some c -> Container.stop c
          | None -> ());
          reply Host_ack
      | Host_fence ->
          fence t;
          reply Host_ack
      | _ -> reply Host_ack)

let watch_lease t =
  ignore
    (Engine.every t.eng ~label:"orch.lease" (Time.ms 250) (fun () ->
         match t.last_hb with
         | Some hb
           when t.up && (not t.fenced)
                && Time.diff (Engine.now t.eng) hb > t.lease ->
             (* Lost the controller: assume we are the partitioned side
                and fence ourselves before the controller migrates. *)
             fence t
         | _ -> ()))

let create net ~fabric ?(boot_span = Time.sec 1) ?(lease_timeout = Time.sec 3)
    hname =
  let hnode = Network.add_node net ~forwarding:true hname in
  let fabric_node = fabric in
  let link, haddr, fabric_addr =
    Network.connect net ~delay:(Time.us 20) fabric hnode
  in
  (* The connect call returns (fabric side, host side): first address
     belongs to the first node argument. *)
  let haddr, fabric_addr = (fabric_addr, haddr) in
  let t =
    {
      hname;
      hnet = net;
      hnode;
      fabric = fabric_node;
      link;
      haddr;
      container_boot = boot_span;
      lease = lease_timeout;
      eng = Network.engine net;
      cts = [];
      fenced = false;
      up = true;
      last_hb = None;
      next_subnet = 0;
    }
  in
  Node.add_route hnode (Addr.prefix_of_string "0.0.0.0/0") fabric_addr;
  serve_control t;
  watch_lease t;
  t

let veth_base = Addr.of_string "172.16.0.0"

let create_container t ?boot_span id =
  if find_container t id <> None then
    invalid_arg (Printf.sprintf "Host.create_container: duplicate id %s" id);
  let eng = t.eng in
  let cnode = Node.create eng (t.hname ^ "/" ^ id) in
  (* vEth pair: a private /30 per container, host side .1, container .2.
     Subnets are allocated per network so no two containers in one
     deployment share one (they are only ever used host-locally, but
     uniqueness keeps traces unambiguous — and per-network allocation
     keeps the addresses identical across repeated runs in a process,
     which chaos replay relies on). *)
  let subnet = Network.fresh_private_subnet t.hnet in
  t.next_subnet <- t.next_subnet + 1;
  let host_side = Addr.offset veth_base ((subnet lsl 2) lor 1) in
  let cont_side = Addr.succ host_side in
  let veth = Link.create eng ~delay:(Time.us 5) ~name:(t.hname ^ "/" ^ id ^ "/veth") () in
  Node.attach t.hnode veth Link.A ~local:host_side ~remote:cont_side;
  (* Fabric reaches the container's vEth subnet via this host (used by the
     controller's gRPC channel to the container instance). *)
  Node.add_route t.fabric (Addr.prefix host_side 30) t.haddr;
  Node.attach cnode veth Link.B ~local:cont_side ~remote:host_side;
  Node.add_route cnode (Addr.prefix_of_string "0.0.0.0/0") host_side;
  (* The container starts dark until booted. *)
  Node.set_up cnode false;
  let host_route vip = Node.add_route t.hnode (Addr.prefix vip 32) cont_side in
  let c =
    Container.internal_make ~id ~host_name:t.hname ~node:cnode
      ~veth_addr:cont_side ~host_route
      ~boot_span:(match boot_span with Some b -> b | None -> t.container_boot)
  in
  t.cts <- c :: t.cts;
  c

let memory_used_mb t =
  List.fold_left
    (fun acc c ->
      if Container.state c = Container.Running then acc +. Container.mem_mb c
      else acc)
    0.0 t.cts

let cpu_used_pct t =
  List.fold_left
    (fun acc c ->
      if Container.state c = Container.Running then acc +. Container.cpu_pct c
      else acc)
    0.0 t.cts

let fail t =
  t.up <- false;
  Node.set_up t.hnode false;
  List.iter Container.fail t.cts

let recover t =
  t.up <- true;
  t.fenced <- true (* no re-use before manual reset *);
  Node.set_up t.hnode true

let network_fail t = Link.set_up t.link false
let network_recover t = Link.set_up t.link true
