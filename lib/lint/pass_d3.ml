(* d3 — float equality.

   [=] / [<>] on floats is almost never what sim-time arithmetic wants:
   accumulated rounding makes "equal" timestamps drift apart, and
   [nan = nan] is false, so sentinel checks silently fail. Compare with
   a tolerance, use [Float.is_nan], or restructure around an option.
   Flagged when either operand is syntactically a float: a float
   literal, a [(e : float)] annotation, or a float constant like [nan]. *)

open Parsetree

let eq_ops = [ "="; "<>"; "=="; "!=" ]
let float_idents = [ "nan"; "infinity"; "neg_infinity"; "epsilon_float" ]

let floaty (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt; _ }, []); _ }) ->
      Pass.last txt = "float"
  | Pexp_ident { txt = Longident.Lident id; _ } -> List.mem id float_idents
  | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Float", id); _ } ->
      List.mem id [ "nan"; "infinity"; "neg_infinity"; "epsilon" ]
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, _)
    when List.mem op [ "+."; "-."; "*."; "/." ] ->
      true
  | _ -> false

let rec pass =
  {
    Pass.name = "d3";
    severity = Finding.Warning;
    doc = "float equality in sim arithmetic (tolerance or Float.is_nan)";
    rationale =
      "x = y on floats is true or false depending on rounding of the \
       exact computation path, so refactoring arithmetic (or enabling \
       FMA) flips branches. Compare against a tolerance, or use \
       Float.is_nan / compare for the intent being expressed.";
    example = "let converged a b = a = b (* both float *)";
    check;
    graph_check = None;
  }

and check ctx str =
  let findings = ref [] in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident op; loc }; _ },
          [ (_, a); (_, b) ] )
      when List.mem op eq_ops && (floaty a || floaty b) ->
        findings :=
          Pass.finding ctx ~pass ~loc
            "float equality (%s) is rounding- and nan-hostile; compare \
             with a tolerance or match on the producing branch"
            op
          :: !findings
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str;
  !findings
