(* Committed-findings baseline: the CI gate fails only on findings that
   are not in the baseline, so the repo can adopt the linter at zero and
   stay there. Matching is by (pass, file, message) — line numbers churn
   with unrelated edits — and is multiset-aware: two identical findings
   need two baseline entries. *)

type entry = { b_pass : string; b_file : string; b_message : string }

let of_finding (f : Finding.t) =
  { b_pass = f.pass; b_file = f.file; b_message = f.message }

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> (
      match Monitor.Json.parse text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok json -> (
          match Option.bind (Monitor.Json.member "findings" json)
                  Monitor.Json.to_list
          with
          | None -> Error (path ^ ": no \"findings\" array")
          | Some items ->
              let entry item =
                let str k =
                  Option.bind (Monitor.Json.member k item) Monitor.Json.to_str
                in
                match (str "pass", str "file", str "message") with
                | Some b_pass, Some b_file, Some b_message ->
                    Ok { b_pass; b_file; b_message }
                | _ -> Error (path ^ ": baseline entry missing pass/file/message")
              in
              List.fold_left
                (fun acc item ->
                  match (acc, entry item) with
                  | Error e, _ -> Error e
                  | _, Error e -> Error e
                  | Ok l, Ok e -> Ok (e :: l))
                (Ok []) items
              |> Result.map List.rev))

(* Findings not covered by the baseline (each entry absorbs one). *)
let diff entries findings =
  let remaining = ref entries in
  List.filter
    (fun f ->
      let e = of_finding f in
      let rec take acc = function
        | [] -> None
        | x :: rest when x = e -> Some (List.rev_append acc rest)
        | x :: rest -> take (x :: acc) rest
      in
      match take [] !remaining with
      | Some rest ->
          remaining := rest;
          false
      | None -> true)
    findings
