(* d4 — top-level mutable state in domain-shared libraries.

   Parallel campaigns execute chaos runs on OCaml 5 domains. Any
   module-level mutable cell in a library those runs link against is
   shared by every domain at once: a data race at best, and a
   determinism leak (one domain's run observing another's counters)
   always. Per-run state belongs in a value the run owns; state that is
   genuinely per-execution-context belongs in [Domain.DLS] (each domain
   lazily gets a fresh copy, so run isolation is identical under
   [--jobs 1] and [--jobs N]).

   The pass is syntactic: it flags top-level [let]s whose right-hand
   side directly constructs mutable storage — [ref], [Hashtbl.create]
   (including local [Hashtbl.Make] instances), [Queue]/[Stack]/
   [Buffer]/[Weak] creation, [Bytes]/[Array] construction, array
   literals, [Atomic.make], [lazy] (racy to force concurrently), and
   record/tuple literals containing any of those. Mutable state built
   inside a function body is per-call and fine; so is
   [Domain.DLS.new_key (fun () -> ...)], where the constructor sits
   under the lambda. Deliberate cross-domain cells (e.g. fault flags
   written only before domains spawn) carry a reasoned suppression.
   Scope: lib/ minus lib/lint (the linter itself never runs inside a
   campaign domain). *)

open Parsetree

let scope_dirs = [ "lib" ]
let exempt_dirs = [ "lib/lint" ]

let creators =
  [
    ([ "Hashtbl"; "create" ], "Hashtbl.create");
    ([ "Queue"; "create" ], "Queue.create");
    ([ "Stack"; "create" ], "Stack.create");
    ([ "Buffer"; "create" ], "Buffer.create");
    ([ "Weak"; "create" ], "Weak.create");
    ([ "Atomic"; "make" ], "Atomic.make");
    ([ "Bytes"; "create" ], "Bytes.create");
    ([ "Bytes"; "make" ], "Bytes.make");
    ([ "Bytes"; "of_string" ], "Bytes.of_string");
    ([ "Array"; "make" ], "Array.make");
    ([ "Array"; "init" ], "Array.init");
    ([ "Array"; "create_float" ], "Array.create_float");
    ([ "Array"; "make_matrix" ], "Array.make_matrix");
    ([ "Array"; "of_list" ], "Array.of_list");
    ([ "Array"; "copy" ], "Array.copy");
  ]

let rec pass =
  {
    Pass.name = "d4";
    severity = Finding.Error;
    doc =
      "top-level mutable state in domain-shared libraries (make it per-run \
       or Domain.DLS so parallel campaigns stay isolated)";
    rationale =
      "Par.Pool runs tasks on OCaml 5 domains in the same process: a \
       top-level ref or mutable record is shared by every domain, so \
       two concurrent chaos runs race on it and --jobs N output \
       diverges from --jobs 1. Per-run state must live in the run's own \
       records or in Domain.DLS.";
    example = "let next_id = ref 0";
    check;
    graph_check = None;
  }

and check ctx str =
  if
    (not (Pass.file_in_dirs ctx scope_dirs))
    || Pass.file_in_dirs ctx exempt_dirs
  then []
  else begin
    let findings = ref [] in
    (* Local [module M = Hashtbl.Make (...)] instances: [M.create] is a
       hash-table constructor too (same sweep as d1). *)
    let tbl_modules = ref [ "Hashtbl" ] in
    let collect_modules =
      {
        Ast_iterator.default_iterator with
        module_binding =
          (fun it mb ->
            (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
            | Some name, Pmod_apply ({ pmod_desc = Pmod_ident lid; _ }, _)
              when Pass.flatten lid.txt = [ "Hashtbl"; "Make" ] ->
                tbl_modules := name :: !tbl_modules
            | _ -> ());
            Ast_iterator.default_iterator.module_binding it mb);
      }
    in
    collect_modules.structure collect_modules str;
    (* What a top-level RHS may not be: a direct construction of mutable
       storage. Descends through the expression's *value* positions
       (record fields, tuples, let bodies, if/match arms) but never into
       function bodies — those construct per call. Returns the name of
       the offending constructor. *)
    let rec mutable_construct (e : expression) =
      match e.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
          match Pass.flatten txt with
          | [ "ref" ] -> Some "ref"
          | [ m; "create" ] when List.mem m !tbl_modules ->
              Some (m ^ ".create")
          | path ->
              List.find_opt (fun (p, _) -> p = path) creators
              |> Option.map snd)
      | Pexp_array _ -> Some "array literal"
      | Pexp_lazy _ -> Some "lazy (concurrent forcing races)"
      | Pexp_record (fields, base) ->
          let in_fields =
            List.find_map (fun (_, v) -> mutable_construct v) fields
          in
          if in_fields <> None then in_fields
          else Option.bind base mutable_construct
      | Pexp_tuple es -> List.find_map mutable_construct es
      | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) ->
          mutable_construct arg
      | Pexp_let (_, _, body)
      | Pexp_sequence (_, body)
      | Pexp_constraint (body, _)
      | Pexp_open (_, body) ->
          mutable_construct body
      | Pexp_ifthenelse (_, t, f) -> (
          match mutable_construct t with
          | Some _ as hit -> hit
          | None -> Option.bind f mutable_construct)
      | Pexp_match (_, cases) | Pexp_try (_, cases) ->
          List.find_map (fun c -> mutable_construct c.pc_rhs) cases
      | _ -> None
    in
    let value_binding (vb : value_binding) =
      match mutable_construct vb.pvb_expr with
      | Some what ->
          findings :=
            Pass.finding ctx ~pass ~loc:vb.pvb_expr.pexp_loc
              "top-level %s is process state shared by every domain; make \
               it per-run, engine-owned, or Domain.DLS so runs stay \
               isolated under --jobs N"
              what
            :: !findings
      | None -> ()
    in
    (* Only structure-level bindings (including inside top-level
       [module M = struct ... end]): those execute once at link time and
       live for the whole process. *)
    let rec structure items = List.iter structure_item items
    and structure_item (si : structure_item) =
      match si.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter value_binding vbs
      | Pstr_module mb -> module_expr mb.pmb_expr
      | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr mb.pmb_expr) mbs
      | Pstr_include { pincl_mod = me; _ } -> module_expr me
      | _ -> ()
    and module_expr (me : module_expr) =
      match me.pmod_desc with
      | Pmod_structure items -> structure items
      | Pmod_constraint (me, _) -> module_expr me
      | _ -> ()
    in
    structure str;
    !findings
  end
