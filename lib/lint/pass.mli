(** Pass registry types and the helpers every pass shares. *)

type ctx = { file : string  (** repo-relative path, '/'-separated *) }

type t = {
  name : string;  (** short id used in suppressions, e.g. ["d1"] *)
  severity : Finding.severity;
  doc : string;  (** one-line description for [--list-passes] and docs *)
  rationale : string;  (** the why, printed by [tensor-lint --explain] *)
  example : string;  (** minimal source that trips the pass *)
  check : ctx -> Parsetree.structure -> Finding.t list;
  graph_check : (Callgraph.t -> Finding.t list) option;
      (** interprocedural passes run once over the repo call graph *)
}

val finding :
  ctx -> pass:t -> loc:Location.t -> ('a, unit, string, Finding.t) format4 -> 'a
(** Build a finding at [loc]'s start position. *)

val graph_finding :
  t -> file:string -> loc:Location.t -> ('a, unit, string, Finding.t) format4 -> 'a
(** [finding] for graph passes, which roam across files and carry no
    per-file [ctx]. *)

val normalize : string -> string
(** '/'-separate and strip a leading ["./"]. *)

val last : Longident.t -> string
(** Last component of a dotted path ([Hashtbl.iter] -> ["iter"]). *)

val flatten : Longident.t -> string list
(** Components of a dotted path; [Lapply] collapses to its functor. *)

val file_in_dirs : ctx -> string list -> bool
(** Does [ctx.file] live under one of the directory prefixes? *)

val file_is : ctx -> string -> bool
(** Suffix match, so ["lib/sim/det.ml"] also matches an absolute path. *)
