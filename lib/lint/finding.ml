type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type t = {
  pass : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let v ~pass ~severity ~file ~line ~col message =
  { pass; severity; file; line; col; message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.pass b.pass in
        if c <> 0 then c else String.compare a.message b.message

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col f.pass
    (severity_to_string f.severity)
    f.message
