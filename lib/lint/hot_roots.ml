(* The annotated-root manifests for the interprocedural passes, the
   same convention as p1's FSM manifest: a static list the passes trust
   and the tree must keep honest. A new hot entry point (another
   dispatch loop, another codec, another digest) is INVISIBLE to
   h1/d5/p3 until it is added here — adding the root is part of the
   change that introduces it, and the review checklist in README's
   "Static analysis" section says so. *)

type root = {
  rt_file : string;  (* repo-relative, e.g. "lib/sim/engine.ml" *)
  rt_fns : string list;  (* top-level (or "M.f"-qualified) names *)
  rt_label : string;  (* human label carried into finding messages *)
}

(* Entry points whose transitive callees execute per simulated event or
   per packet/segment/update — the paths that set the events/s ceiling
   (ROADMAP item 2). Budgeted by h1 (allocation) and p3 (panics). *)
let hot_paths =
  [
    {
      rt_file = "lib/sim/engine.ml";
      rt_fns = [ "exec"; "step"; "run"; "run_until"; "schedule_at" ];
      rt_label = "engine dispatch";
    };
    {
      rt_file = "lib/tcp/tcp.ml";
      rt_fns =
        [
          "conn_rx";
          "established_process";
          "process_ack";
          "process_data";
          "process_fin";
          "try_send";
          "send_seg";
          "raw_send";
        ];
      rt_label = "tcp rx/tx";
    };
    {
      rt_file = "lib/bgp/msg.ml";
      rt_fns = [ "encode"; "decode" ];
      rt_label = "bgp codec";
    };
    {
      rt_file = "lib/bgp/rib.ml";
      rt_fns = [ "update"; "fold_best"; "digest" ];
      rt_label = "rib fold";
    };
    {
      rt_file = "lib/netsim/node.ml";
      rt_fns = [ "emit"; "rx" ];
      rt_label = "packet delivery";
    };
    {
      rt_file = "lib/netsim/link.ml";
      rt_fns = [ "transmit" ];
      rt_label = "packet delivery";
    };
    (* Fleet-scale per-event entry points: the SLO aggregator sees every
       bus entry of a campaign, and the store probers tick per region
       every 500 ms across hundreds of instances. *)
    {
      rt_file = "lib/fleet/slo.ml";
      rt_fns = [ "on_entry" ];
      rt_label = "fleet slo aggregation";
    };
    {
      rt_file = "lib/fleet/topology.ml";
      rt_fns = [ "arm_store_probers" ];
      rt_label = "fleet store probe";
    };
    {
      rt_file = "lib/monitor/checker.ml";
      rt_fns = [ "fleet_mark_up"; "fleet_mark_down" ];
      rt_label = "fleet slo checker";
    };
  ]

(* Functions whose output feeds a replay/equivalence digest: anything
   nondeterministic reachable from here silently breaks byte-identical
   replay. Audited by d5 at error severity, unbounded depth. *)
let digest_feeding =
  [
    {
      rt_file = "lib/bgp/rib.ml";
      rt_fns = [ "digest" ];
      rt_label = "rib digest";
    };
    {
      rt_file = "lib/tensor/check.ml";
      rt_fns = [ "snapshot_session" ];
      rt_label = "session snapshot digest";
    };
    {
      rt_file = "lib/chaos/runner.ml";
      rt_fns = [ "run" ];
      rt_label = "chaos run digest";
    };
    (* Fleet campaigns replay byte-identically across --jobs settings:
       everything the run executes — wave pump included — feeds the
       campaign digest. *)
    {
      rt_file = "lib/fleet/campaign.ml";
      rt_fns = [ "run" ];
      rt_label = "fleet campaign digest";
    };
    {
      rt_file = "lib/fleet/waves.ml";
      rt_fns = [ "pump" ];
      rt_label = "fleet upgrade wave";
    };
  ]

let as_roots manifest =
  List.concat_map
    (fun r -> List.map (fun fn -> (r.rt_file, fn, r.rt_label)) r.rt_fns)
    manifest
