type ctx = { file : string }

type t = {
  name : string;
  severity : Finding.severity;
  doc : string;
  rationale : string;  (* the why, printed by `tensor-lint --explain` *)
  example : string;  (* minimal source that trips the pass *)
  check : ctx -> Parsetree.structure -> Finding.t list;
  graph_check : (Callgraph.t -> Finding.t list) option;
      (* interprocedural passes run once over the repo call graph,
         after the per-file stage, on the calling domain *)
}

let graph_finding pass ~file ~loc fmt =
  let p = loc.Location.loc_start in
  Printf.ksprintf
    (Finding.v ~pass:pass.name ~severity:pass.severity ~file
       ~line:p.Lexing.pos_lnum
       ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol))
    fmt

let finding ctx ~pass ~loc fmt =
  let p = loc.Location.loc_start in
  Printf.ksprintf
    (Finding.v ~pass:pass.name ~severity:pass.severity ~file:ctx.file
       ~line:p.Lexing.pos_lnum
       ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol))
    fmt

let rec last = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply (_, l) -> last l

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (l, _) -> flatten l

let normalize file =
  let file = String.map (function '\\' -> '/' | c -> c) file in
  if String.starts_with ~prefix:"./" file then
    String.sub file 2 (String.length file - 2)
  else file

let file_in_dirs ctx dirs =
  let file = normalize ctx.file in
  List.exists
    (fun d ->
      let d = if String.ends_with ~suffix:"/" d then d else d ^ "/" in
      String.starts_with ~prefix:d file
      ||
      (* ".../<d>/..." anywhere, so absolute paths scope too *)
      let needle = "/" ^ d in
      let n = String.length needle and len = String.length file in
      let rec scan i =
        i + n <= len && (String.sub file i n = needle || scan (i + 1))
      in
      scan 0)
    dirs

let file_is ctx suffix =
  let file = normalize ctx.file in
  String.equal file suffix || String.ends_with ~suffix:("/" ^ suffix) file
