(* p2 — panic budget in protocol hot paths.

   [failwith], [assert false] and [Obj.magic] inside the BGP/TCP/BFD/
   replication code kill a speaker that NSR promised would survive.
   Every such site must either handle the case or carry a suppression
   whose reason explains why it cannot fire. *)

open Parsetree

let hot_dirs =
  [
    "lib/bgp";
    "lib/tcp";
    "lib/bfd";
    "lib/netfilter";
    "lib/tensor";
    "lib/orch";
    "lib/store";
  ]

let rec pass =
  {
    Pass.name = "p2";
    severity = Finding.Error;
    doc =
      "failwith / assert false / Obj.magic in protocol hot paths must \
       carry a suppression explaining why it cannot fire";
    rationale =
      "A panic in a protocol handler tears down the whole simulated \
       instance — the opposite of non-stop routing. Inside the \
       protocol directories every failwith/assert false/Obj.magic \
       must either be refactored into a total function or carry a \
       suppression whose reason argues why the case is unreachable.";
    example = "let flags_of = function 0 -> [] | _ -> failwith \"flags\"";
    check;
    graph_check = None;
  }

and check ctx str =
  if not (Pass.file_in_dirs ctx hot_dirs) then []
  else begin
    let findings = ref [] in
    let hit loc what =
      findings :=
        Pass.finding ctx ~pass ~loc
          "%s in a protocol hot path: handle the case, or suppress with \
           the reason it cannot fire"
          what
        :: !findings
    in
    let expr it (e : expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident "failwith"; loc } ->
          hit loc "failwith"
      | Pexp_ident { txt; loc } when Pass.flatten txt = [ "Obj"; "magic" ] ->
          hit loc "Obj.magic"
      | Pexp_assert
          { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
            pexp_loc = loc;
            _ } ->
          hit loc "assert false"
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it str;
    !findings
  end
