(* p3 — interprocedural panic budget (error severity).

   p2 polices failwith/assert false/Obj.magic inside the protocol
   directories, one file at a time. p3 extends the budget along the
   call graph from the hot-root manifest: a helper OUTSIDE those
   directories that a protocol hot path calls can still tear the
   instance down, and so can a partial stdlib function (List.hd,
   Option.get, Hashtbl.find ...) anywhere in the reachable set —
   Not_found from three calls deep is still a dead speaker.

   Panic primitives are only reported for files p2 does NOT already
   own, so one site is never double-reported (and never needs two
   suppressions). Partial stdlib functions are p3's alone and are
   reported wherever they are reachable. *)

open Parsetree

let partial_fns =
  [
    ([ "List"; "hd" ], "List.hd");
    ([ "List"; "tl" ], "List.tl");
    ([ "List"; "nth" ], "List.nth");
    ([ "List"; "find" ], "List.find");
    ([ "List"; "assoc" ], "List.assoc");
    ([ "Option"; "get" ], "Option.get");
    ([ "Hashtbl"; "find" ], "Hashtbl.find");
  ]

let rec pass =
  {
    Pass.name = "p3";
    severity = Finding.Error;
    doc =
      "panic or partial stdlib function reachable from a protocol hot \
       path (call-graph extension of p2 beyond its directory horizon)";
    rationale =
      "Non-stop routing means the speaker survives its own edge cases. \
       p2 already bans panic primitives inside the protocol \
       directories; p3 walks the call graph from the \
       Hot_roots.hot_paths manifest so a failwith hiding in a shared \
       helper — or a List.hd/Option.get/Hashtbl.find that raises on \
       the input nobody tested — is caught no matter which file it \
       lives in. Refactor to a total function (find_opt + explicit \
       handling) or argue unreachability in a suppression.";
    example = "let route t k = Hashtbl.find t.table k (* via rx path *)";
    check = (fun _ _ -> []);
    graph_check = Some check_graph;
  }

and check_graph g =
  let roots = Hot_roots.as_roots Hot_roots.hot_paths in
  let reach = Callgraph.reachable g ~roots () in
  List.concat_map
    (fun (r : Callgraph.reach) ->
      match Callgraph.find g ~file:r.r_file ~name:r.r_name with
      | None -> []
      | Some d ->
          let p2_owns =
            Pass.file_in_dirs
              { Pass.file = d.Callgraph.d_file }
              Pass_p2.hot_dirs
          in
          scan ~file:d.Callgraph.d_file ~p2_owns ~via:r.r_via
            ~chain:r.r_chain d.Callgraph.d_body)
    reach

and scan ~file ~p2_owns ~via ~chain body =
  let findings = ref [] in
  let hit loc what =
    findings :=
      Pass.graph_finding pass ~file ~loc
        "%s reachable from hot path (via %s: %s); make it total or argue \
         unreachability in a suppression"
        what via
        (String.concat " -> " chain)
      :: !findings
  in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        let path = Callgraph.flatten txt in
        match List.find_opt (fun (p, _) -> p = path) partial_fns with
        | Some (_, name) -> hit loc (name ^ " (partial)")
        | None ->
            if not p2_owns then
              match path with
              | [ "failwith" ] -> hit loc "failwith"
              | "Obj" :: [ "magic" ] -> hit loc "Obj.magic"
              | _ -> ())
    | Pexp_assert { pexp_desc = Pexp_construct ({ txt; _ }, None); _ }
      when (not p2_owns) && Callgraph.flatten txt = [ "false" ] ->
        hit e.pexp_loc "assert false"
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  List.rev !findings
