(* d2 — ambient nondeterminism.

   A descriptor plus a seed must reproduce a byte-identical run. Ambient
   entropy (the [Random] module, wall-clock reads, digests of mutable
   buffers, [Marshal]'s representation-dependent output) silently breaks
   that contract. All simulation randomness must come from [Sim.Rng]
   ([lib/sim/rng.ml] is the one allowed implementation site); wall-clock
   measurements in harnesses need an explicit suppression stating that
   wall time is the datum being reported. *)

open Parsetree

let unix_time_fns = [ "gettimeofday"; "time"; "gmtime"; "localtime"; "times" ]
let digest_mutable = [ "bytes"; "subbytes"; "channel"; "file"; "input" ]
let rng_file = "lib/sim/rng.ml"

let rec pass =
  {
    Pass.name = "d2";
    severity = Finding.Error;
    doc =
      "ambient nondeterminism: Random outside Sim.Rng, wall-clock reads, \
       Digest of mutable data, Marshal";
    rationale =
      "A descriptor plus a seed must reproduce a byte-identical run. \
       Ambient entropy — the global Random state, wall-clock reads, \
       digests over mutable buffers, Marshal's representation-dependent \
       bytes — silently breaks that contract. All simulation randomness \
       comes from the run's seeded Sim.Rng.";
    example = "let jitter () = Random.int 100";
    check;
    graph_check = None;
  }

and check ctx str =
  let findings = ref [] in
  let hit loc fmt = Printf.ksprintf (fun msg ->
      findings := Pass.finding ctx ~pass ~loc "%s" msg :: !findings) fmt
  in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        match Pass.flatten txt with
        | "Random" :: _ when not (Pass.file_is ctx rng_file) ->
            hit loc
              "ambient randomness (%s): draw from the run's seeded Sim.Rng \
               instead"
              (String.concat "." (Pass.flatten txt))
        | [ "Sys"; "time" ] ->
            hit loc "wall-clock read (Sys.time) breaks seeded replay"
        | [ "Unix"; fn ] when List.mem fn unix_time_fns ->
            hit loc "wall-clock read (Unix.%s) breaks seeded replay" fn
        | [ "Digest"; fn ] when List.mem fn digest_mutable ->
            hit loc
              "Digest.%s hashes mutable/IO input; digest an immutable \
               string built in canonical order"
              fn
        | "Marshal" :: _ ->
            hit loc
              "Marshal output depends on runtime representation; use an \
               explicit canonical encoding"
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str;
  !findings
