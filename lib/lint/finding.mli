(** One linter finding: a pass, a location, and a message. *)

type severity = Error | Warning

val severity_to_string : severity -> string

type t = {
  pass : string;
  severity : severity;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports *)
  message : string;
}

val v :
  pass:string ->
  severity:severity ->
  file:string ->
  line:int ->
  col:int ->
  string ->
  t

val compare : t -> t -> int
(** Orders by file, line, column, pass, message. *)

val to_string : t -> string
(** [file:line:col: [pass] severity: message] — one line, clickable. *)
