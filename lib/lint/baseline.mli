(** The committed zero-findings baseline the CI gate diffs against. *)

type entry = { b_pass : string; b_file : string; b_message : string }

val of_finding : Finding.t -> entry

val load : string -> (entry list, string) result
(** Reads a [tensor-lint --json] report (or hand-written baseline):
    only [pass]/[file]/[message] of each entry under ["findings"] are
    consulted. *)

val diff : entry list -> Finding.t list -> Finding.t list
(** Findings not absorbed by a baseline entry; multiset semantics. *)
