(** Source-comment suppressions.

    A finding is silenced by a comment of the form
    [(* lint: allow <pass>[,<pass>...] — reason *)] placed either on the
    offending line or alone on the line directly above it. The reason is
    mandatory (separated by an em-dash or ["--"]); a reasonless or
    malformed directive suppresses nothing and is itself reported under
    the meta pass ["suppress"], as is a directive that matches no
    finding. *)

type directive = {
  d_line : int;  (** line the comment sits on (1-based) *)
  target : int;  (** line findings must be on to match *)
  passes : string list;
  reason : string option;
  error : string option;  (** parse problem; the directive is inert *)
}

val meta_pass : string
(** ["suppress"] *)

val scan : string -> directive list
(** Extract directives from raw source text. Directives must open and
    state their pass list on a single line. *)

val apply :
  file:string ->
  known_passes:string list ->
  directive list ->
  Finding.t list ->
  Finding.t list * int
(** [apply ~file ~known_passes ds findings] returns the findings that
    survive suppression — including meta findings for malformed,
    reasonless, unknown-pass, and unused directives — plus the number of
    findings that were suppressed. *)
