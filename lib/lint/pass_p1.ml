(* p1 — wildcard arms over protocol FSM states.

   A [| _ ->] arm in a match over the BGP/TCP/BFD session-state variants
   swallows every state added later: the type checker stays silent and a
   missed transition becomes a silent no-op. The manifest below names
   each FSM's constructors; a case list that matches one of them in some
   arm may not hide the same position behind a wildcard in another.

   Detection is positional: for every tuple/constructor-argument slot
   where any arm places a manifest constructor, every other arm must be
   explicit at that slot (a constructor, or an or-pattern of them) —
   [Ppat_any] and catch-all variables are findings. Intentional
   any-state arms (e.g. "NOTIFICATION tears down in every state") carry
   a suppression with the RFC reference as the reason. *)

open Parsetree

type fsm = {
  label : string;
  dirs : string list;  (** unqualified constructors match under these *)
  modules : string list;  (** qualified constructors match everywhere *)
  ctors : string list;
}

let manifest =
  [
    {
      label = "BGP session states";
      dirs = [ "lib/bgp" ];
      modules = [ "Session" ];
      ctors =
        [ "Idle"; "Connecting"; "Open_sent"; "Open_confirm"; "Established";
          "Down" ];
    };
    {
      label = "TCP connection states";
      dirs = [ "lib/tcp" ];
      modules = [ "Tcp" ];
      ctors =
        [ "Syn_sent"; "Syn_received"; "Established"; "Fin_wait_1";
          "Fin_wait_2"; "Close_wait"; "Last_ack"; "Closed" ];
    };
    {
      label = "BFD session states";
      dirs = [ "lib/bfd" ];
      modules = [ "Bfd" ];
      ctors = [ "Admin_down"; "Down"; "Init"; "Up" ];
    };
  ]

(* Steps from the scrutinee down to a slot: tuple index or constructor
   argument. *)
type step = T of int | C of string

let fsm_of_ctor ctx lid =
  let name = Pass.last lid in
  let qualifier =
    match List.rev (Pass.flatten lid) with _ :: m :: _ -> Some m | _ -> None
  in
  List.find_opt
    (fun f ->
      List.mem name f.ctors
      && (Pass.file_in_dirs ctx f.dirs
         || match qualifier with
            | Some m -> List.mem m f.modules
            | None -> false))
    manifest

(* Collect every slot where some arm puts a manifest constructor. *)
let state_slots ctx cases =
  let slots = ref [] in
  let add path f =
    if not (List.exists (fun (p, _) -> p = path) !slots) then
      slots := (path, f) :: !slots
  in
  let rec walk path (p : pattern) =
    match p.ppat_desc with
    | Ppat_or (a, b) ->
        walk path a;
        walk path b
    | Ppat_alias (q, _) | Ppat_constraint (q, _) | Ppat_open (_, q) ->
        walk path q
    | Ppat_tuple ps -> List.iteri (fun i q -> walk (path @ [ T i ]) q) ps
    | Ppat_construct (lid, arg) -> (
        (match fsm_of_ctor ctx lid.txt with
        | Some f -> add path f
        | None -> ());
        match arg with
        | Some (_, q) -> walk (path @ [ C (Pass.last lid.txt) ]) q
        | None -> ())
    | _ -> ()
  in
  List.iter
    (fun c ->
      match c.pc_lhs.ppat_desc with
      | Ppat_exception _ -> ()
      | _ -> walk [] c.pc_lhs)
    cases;
  !slots

(* Does this arm hide [path] behind a wildcard? *)
let rec swallows (p : pattern) path =
  match p.ppat_desc with
  | Ppat_or (a, b) -> swallows a path || swallows b path
  | Ppat_alias (q, _) | Ppat_constraint (q, _) | Ppat_open (_, q) ->
      swallows q path
  | Ppat_any | Ppat_var _ -> true
  | _ -> (
      match path with
      | [] -> false
      | T i :: rest -> (
          match p.ppat_desc with
          | Ppat_tuple ps when i < List.length ps ->
              swallows (List.nth ps i) rest
          | _ -> false)
      | C name :: rest -> (
          match p.ppat_desc with
          | Ppat_construct (lid, Some (_, q)) when Pass.last lid.txt = name ->
              swallows q rest
          | _ -> false))

let rec pass =
  {
    Pass.name = "p1";
    severity = Finding.Error;
    doc =
      "wildcard arm hides protocol FSM states; list the states so new \
       ones cannot be silently swallowed";
    rationale =
      "A `_ ->` arm over a protocol FSM type keeps compiling when a new \
       state constructor is added, silently routing the new state \
       through whatever the wildcard did — the BGP/BFD/TCP bugs this \
       repo exists to avoid. Listing the constructors turns the next \
       added state into a compile error at every decision point. The \
       manifest of FSM types lives in pass_p1.ml.";
    example = "match session.state with Established -> act () | _ -> ()";
    check;
    graph_check = None;
  }

and check ctx str =
  let findings = ref [] in
  let handle_cases cases =
    match state_slots ctx cases with
    | [] -> ()
    | slots ->
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_exception _ -> ()
            | _ ->
                let hit =
                  List.filter (fun (path, _) -> swallows c.pc_lhs path) slots
                in
                let labels =
                  List.sort_uniq String.compare
                    (List.map (fun (_, f) -> f.label) hit)
                in
                if labels <> [] then
                  findings :=
                    Pass.finding ctx ~pass ~loc:c.pc_lhs.ppat_loc
                      "wildcard arm swallows %s: make the arms explicit so \
                       a new state cannot silently fall through"
                      (String.concat " and " labels)
                    :: !findings)
          cases
  in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_match (_, cases) | Pexp_function cases -> handle_cases cases
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str;
  !findings
