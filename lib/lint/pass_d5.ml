(* d5 — digest purity (interprocedural, error severity).

   d2 flags ambient-nondeterminism sites file by file; d5 closes the
   remaining gap: a d2 source that is REACHABLE from a digest-feeding
   function (Hot_roots.digest_feeding — the RIB digest, the session
   snapshot digests, the chaos run digest) breaks byte-identical
   replay even if its own file carries a perfectly argued d2
   suppression. The walk is unbounded: three calls of indirection do
   not launder entropy out of a digest.

   The message carries the shortest call chain from the root to the
   offending function, so a CI failure reads as the repair plan:
   either cut the edge or derive the value from the run's seeded
   Sim.Rng. *)

open Parsetree

let unix_time_fns = [ "gettimeofday"; "time"; "gmtime"; "localtime"; "times" ]
let digest_mutable = [ "bytes"; "subbytes"; "channel"; "file"; "input" ]
let rng_file = "lib/sim/rng.ml"

let rec pass =
  {
    Pass.name = "d5";
    severity = Finding.Error;
    doc =
      "nondeterminism source reachable from a digest-feeding function \
       (call-graph closure over the d2 source set)";
    rationale =
      "Replay digests are the repo's equality oracle: corpus entries, \
       --jobs equivalence and store-fault regressions all compare \
       them byte for byte. A wall-clock read or global Random draw \
       anywhere in the transitive callee set of a digest-feeding \
       function makes two runs of the same descriptor hash \
       differently — even when the offending file suppressed d2 for \
       its own, local reasons. The digest-feeding roots live in \
       Hot_roots.digest_feeding.";
    example =
      "let digest t = fnv (salt ()) t  (* where salt () = Random.bits () *)";
    check = (fun _ _ -> []);
    graph_check = Some check_graph;
  }

and check_graph g =
  let roots = Hot_roots.as_roots Hot_roots.digest_feeding in
  let reach = Callgraph.reachable g ~roots () in
  List.concat_map
    (fun (r : Callgraph.reach) ->
      match Callgraph.find g ~file:r.r_file ~name:r.r_name with
      | Some d
        when not
               (String.equal (Callgraph.normalize d.Callgraph.d_file) rng_file
               || String.ends_with ~suffix:("/" ^ rng_file)
                    (Callgraph.normalize d.Callgraph.d_file)) ->
          scan ~file:d.Callgraph.d_file ~via:r.r_via ~chain:r.r_chain
            d.Callgraph.d_body
      | _ -> [])
    reach

and scan ~file ~via ~chain body =
  let findings = ref [] in
  let hit loc src =
    findings :=
      Pass.graph_finding pass ~file ~loc
        "%s reaches %s (%s): derive the value from the run's seeded \
         Sim.Rng or cut the call"
        via src
        (String.concat " -> " chain)
      :: !findings
  in
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        match Callgraph.flatten txt with
        | "Random" :: _ ->
            hit loc
              (Printf.sprintf "ambient randomness (%s)"
                 (String.concat "." (Callgraph.flatten txt)))
        | [ "Sys"; "time" ] -> hit loc "a wall-clock read (Sys.time)"
        | [ "Unix"; fn ] when List.mem fn unix_time_fns ->
            hit loc (Printf.sprintf "a wall-clock read (Unix.%s)" fn)
        | [ "Digest"; fn ] when List.mem fn digest_mutable ->
            hit loc (Printf.sprintf "Digest.%s over mutable/IO input" fn)
        | "Marshal" :: _ ->
            hit loc "Marshal (representation-dependent bytes)"
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  List.rev !findings
