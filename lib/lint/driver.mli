(** The linter driver: parse with compiler-libs, run every registered
    pass, apply source-comment suppressions, report. *)

val passes : Pass.t list
(** The registered passes, in catalogue order. *)

val known_passes : string list
(** Pass names valid in suppressions (registered passes plus the
    ["suppress"] meta pass; the ["parse"] pseudo-pass cannot be
    suppressed). *)

val lint_source : file:string -> string -> Finding.t list * int
(** Lint one compilation unit given as text. Returns surviving findings
    (sorted) and the number of suppressed ones. Unparseable source
    yields a single ["parse"] finding. *)

val files_under : string -> string list
(** [.ml] files under a file or directory path, sorted; skips [_build]
    and dot-directories. Nonexistent paths yield []. *)

type report = {
  findings : Finding.t list;
  files : int;
  suppressed : int;
}

val run : ?jobs:int -> paths:string list -> unit -> report
(** Scan every file under [paths]. [jobs > 1] fans the per-file stage
    (read, parse, per-file passes, suppression scan) out over a
    [Par.Pool] of domains — results merge in sorted-file order, so the
    report is byte-identical for every [jobs] value. The call-graph
    passes then run once on the calling domain. *)

val to_text : report -> new_findings:Finding.t list -> string
(** Human report: one line per finding plus a summary tail. *)

val to_json : report -> new_findings:Finding.t list -> string
(** Machine report; parses with [Monitor.Json] and doubles as a
    baseline file. *)

val to_github : new_findings:Finding.t list -> string
(** GitHub workflow-command annotations ([::error file=..,line=..::msg])
    for the new findings, one per line; empty string when clean. *)

val explain : string -> string option
(** [explain pass_name] renders the pass's doc, rationale, minimal
    positive example and the suppression grammar; [None] for unknown
    names. *)
