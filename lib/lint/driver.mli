(** The linter driver: parse with compiler-libs, run every registered
    pass, apply source-comment suppressions, report. *)

val passes : Pass.t list
(** The registered passes, in catalogue order. *)

val known_passes : string list
(** Pass names valid in suppressions (registered passes plus the
    ["suppress"] meta pass; the ["parse"] pseudo-pass cannot be
    suppressed). *)

val lint_source : file:string -> string -> Finding.t list * int
(** Lint one compilation unit given as text. Returns surviving findings
    (sorted) and the number of suppressed ones. Unparseable source
    yields a single ["parse"] finding. *)

val files_under : string -> string list
(** [.ml] files under a file or directory path, sorted; skips [_build]
    and dot-directories. Nonexistent paths yield []. *)

type report = {
  findings : Finding.t list;
  files : int;
  suppressed : int;
}

val run : paths:string list -> report

val to_text : report -> new_findings:Finding.t list -> string
(** Human report: one line per finding plus a summary tail. *)

val to_json : report -> new_findings:Finding.t list -> string
(** Machine report; parses with [Monitor.Json] and doubles as a
    baseline file. *)
