type directive = {
  d_line : int;
  target : int;
  passes : string list;
  reason : string option;
  error : string option;
}

let meta_pass = "suppress"

(* The marker is assembled at runtime so this file's own literals never
   look like a directive to the scanner. *)
let marker = "lint:"
let em_dash = "\xe2\x80\x94"

let find_sub ?(from = 0) hay needle =
  let n = String.length needle and len = String.length hay in
  let rec scan i =
    if i + n > len then None
    else if String.sub hay i n = needle then Some i
    else scan (i + 1)
  in
  scan (max 0 from)

let is_blank = function ' ' | '\t' -> true | _ -> false

let skip_blanks s i =
  let len = String.length s in
  let rec go i = if i < len && is_blank s.[i] then go (i + 1) else i in
  go i

let token_ok tok =
  tok <> ""
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       tok

let split_tokens s =
  String.split_on_char ' ' (String.map (function ',' -> ' ' | c -> c) s)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* Parse one line; [None] when it holds no directive. *)
let parse_line ~lineno line =
  (* Find "(*" followed (only by blanks) by the marker. *)
  let rec find_opener from =
    match find_sub ~from line "(*" with
    | None -> None
    | Some i ->
        let j = skip_blanks line (i + 2) in
        if
          j + String.length marker <= String.length line
          && String.sub line j (String.length marker) = marker
        then Some (i, j + String.length marker)
        else find_opener (i + 1)
  in
  match find_opener 0 with
  | None -> None
  | Some (open_at, after_marker) ->
      let before = String.sub line 0 open_at in
      let target =
        if String.trim before = "" then lineno + 1 else lineno
      in
      let body_end =
        match find_sub ~from:after_marker line "*)" with
        | Some e -> e
        | None -> String.length line
      in
      let body =
        String.trim (String.sub line after_marker (body_end - after_marker))
      in
      let mk ?(passes = []) ?reason ?error () =
        Some { d_line = lineno; target; passes; reason; error }
      in
      if not (String.starts_with ~prefix:"allow" body) then
        mk ~error:"unknown lint directive; expected 'allow <pass> \xe2\x80\x94 reason'" ()
      else
        let rest =
          String.trim (String.sub body 5 (String.length body - 5))
        in
        let names_part, reason =
          match find_sub rest em_dash with
          | Some i ->
              ( String.sub rest 0 i,
                Some
                  (String.trim
                     (String.sub rest
                        (i + String.length em_dash)
                        (String.length rest - i - String.length em_dash))) )
          | None -> (
              match find_sub rest "--" with
              | Some i ->
                  ( String.sub rest 0 i,
                    Some
                      (String.trim
                         (String.sub rest (i + 2) (String.length rest - i - 2)))
                  )
              | None -> (rest, None))
        in
        let reason =
          match reason with Some "" -> None | r -> r
        in
        let passes = split_tokens (String.trim names_part) in
        if passes = [] then
          mk ~error:"lint directive names no pass" ()
        else if not (List.for_all token_ok passes) then
          mk ~error:"lint directive has a malformed pass name" ()
        else mk ~passes ?reason ()

let scan source =
  let lines = String.split_on_char '\n' source in
  let rec go lineno acc = function
    | [] -> List.rev acc
    | line :: rest ->
        let acc =
          match parse_line ~lineno line with
          | Some d -> d :: acc
          | None -> acc
        in
        go (lineno + 1) acc rest
  in
  go 1 [] lines

let meta ~file ~line fmt =
  Printf.ksprintf
    (Finding.v ~pass:meta_pass ~severity:Finding.Error ~file ~line ~col:0)
    fmt

let apply ~file ~known_passes directives findings =
  let used = Array.make (List.length directives) false in
  let directives_arr = Array.of_list directives in
  let active (d : directive) = d.error = None && d.reason <> None in
  let suppressed f =
    let hit = ref None in
    Array.iteri
      (fun i d ->
        if
          !hit = None && active d
          && d.target = f.Finding.line
          && List.mem f.Finding.pass d.passes
        then hit := Some i)
      directives_arr;
    match !hit with
    | Some i ->
        used.(i) <- true;
        true
    | None -> false
  in
  let survivors = List.filter (fun f -> not (suppressed f)) findings in
  let n_suppressed = List.length findings - List.length survivors in
  let meta_findings =
    Array.to_list directives_arr
    |> List.mapi (fun i (d : directive) ->
           match d.error with
           | Some e -> [ meta ~file ~line:d.d_line "%s" e ]
           | None -> (
               let unknown =
                 List.filter (fun p -> not (List.mem p known_passes)) d.passes
               in
               let unknown_findings =
                 List.map
                   (fun p ->
                     meta ~file ~line:d.d_line
                       "suppression names unknown pass %S" p)
                   unknown
               in
               match d.reason with
               | None ->
                   meta ~file ~line:d.d_line
                     "suppression for %s is missing a reason: append an \
                      em-dash and the why"
                     (String.concat "," d.passes)
                   :: unknown_findings
               | Some _ when not used.(i) ->
                   meta ~file ~line:d.d_line
                     "unused suppression for %s: no matching finding on \
                      line %d"
                     (String.concat "," d.passes)
                     d.target
                   :: unknown_findings
               | Some _ -> unknown_findings))
    |> List.concat
  in
  (List.sort Finding.compare (survivors @ meta_findings), n_suppressed)
