(* A repo-wide call graph over the parsed sources, built once per lint
   run and shared by the interprocedural passes (h1, d5, p3).

   Nodes are top-level [let] bindings — including bindings inside
   nested [module M = struct .. end], qualified as "M.f" — one per
   (file, qualified name). Edges are resolved purely syntactically,
   without the typer:

   - [Lident f] resolves to a definition in the same file unless [f]
     is bound anywhere inside the caller's own body (over-approximate
     shadowing: when in doubt, no edge), with file-level [open M]
     consulted as a fallback.
   - [M.f] (and deeper paths like [Netsim.Addr.equal]) resolve by
     matching module segments right-to-left against nested modules of
     the same file first, then against repo file module names (the
     capitalized basename), preferring a file in the caller's own
     directory and refusing ambiguous matches.

   Unresolved references (stdlib, external libraries, ambiguity) get
   no edge: reachability is an under-approximation on the edge side
   but an over-approximation on the reference side — every identifier
   occurrence counts as a potential call, so a function passed to
   [List.iter] is still an edge. All traversals run over sorted
   structures, so build and query output are deterministic for a given
   file set regardless of hashing or domain scheduling. *)

module SS = Set.Make (String)

type def = {
  d_file : string;  (* normalized path, e.g. "lib/sim/engine.ml" *)
  d_name : string;  (* qualified within the file, e.g. "Heap.push" *)
  d_loc : Location.t;
  d_body : Parsetree.expression;
}

type file_info = {
  fi_file : string;
  fi_module : string;
  fi_dir : string;
  fi_opens : string list;  (* last segment of each top-level open *)
  fi_defs : def list;  (* source order *)
}

type t = {
  files : file_info list;  (* sorted by file *)
  by_module : (string, string list) Hashtbl.t;  (* module -> files *)
  defs_tbl : (string * string, def) Hashtbl.t;
  edges : (string * string, (string * string) list) Hashtbl.t;
}

let normalize file =
  let file = String.map (function '\\' -> '/' | c -> c) file in
  if String.starts_with ~prefix:"./" file then
    String.sub file 2 (String.length file - 2)
  else file

let module_of_file file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

let rec last_segment = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply (_, l) -> last_segment l

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (l, _) -> flatten l

(* --- Definition collection ---------------------------------------------- *)

let rec binder_name (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binder_name p
  | _ -> None

let rec defs_of_items ~file ~prefix (items : Parsetree.structure) acc =
  List.fold_left
    (fun acc (it : Parsetree.structure_item) ->
      match it.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.fold_left
            (fun acc (vb : Parsetree.value_binding) ->
              match binder_name vb.pvb_pat with
              | Some n ->
                  {
                    d_file = file;
                    d_name = prefix ^ n;
                    d_loc = vb.pvb_loc;
                    d_body = vb.pvb_expr;
                  }
                  :: acc
              | None -> acc)
            acc vbs
      | Pstr_module mb -> defs_of_module ~file ~prefix mb acc
      | Pstr_recmodule mbs ->
          List.fold_left
            (fun acc mb -> defs_of_module ~file ~prefix mb acc)
            acc mbs
      | _ -> acc)
    acc items

and defs_of_module ~file ~prefix (mb : Parsetree.module_binding) acc =
  match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
  | Some m, Pmod_structure items ->
      defs_of_items ~file ~prefix:(prefix ^ m ^ ".") items acc
  | _ -> acc

let opens_of_items (items : Parsetree.structure) =
  List.filter_map
    (fun (it : Parsetree.structure_item) ->
      match it.pstr_desc with
      | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
        ->
          Some (last_segment txt)
      | _ -> None)
    items

(* --- Reference collection ------------------------------------------------ *)

(* Every identifier occurrence in [body], in source order, plus the
   over-approximate set of names bound by any pattern inside the body
   (fun params, let bindings, match arms) — a bare reference to one of
   those is treated as local and never resolved to a sibling. *)
let refs_of_body (body : Parsetree.expression) =
  let refs = ref [] in
  let locals = ref SS.empty in
  let pat it (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
        locals := SS.add txt !locals
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> refs := txt :: !refs
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with pat; expr } in
  it.expr it body;
  (List.rev !refs, !locals)

(* --- Resolution ---------------------------------------------------------- *)

let resolve_module t ~caller_dir m =
  match Hashtbl.find_opt t.by_module m with
  | None | Some [] -> None
  | Some [ f ] -> Some f
  | Some files -> (
      match List.filter (fun f -> Filename.dirname f = caller_dir) files with
      | [ f ] -> Some f
      | _ -> None (* ambiguous across directories: refuse *))

(* Defs in [fi] whose qualified name is exactly [q] or ends in ".q". *)
let suffix_defs fi q =
  let dotted = "." ^ q in
  List.filter
    (fun d -> String.equal d.d_name q || String.ends_with ~suffix:dotted d.d_name)
    fi.fi_defs

let resolve t fi locals lid =
  match flatten lid with
  | [] -> None
  | [ f ] ->
      if SS.mem f locals then None
      else if Hashtbl.mem t.defs_tbl (fi.fi_file, f) then
        Some (fi.fi_file, f)
      else
        (* Not a top-level sibling: consult file-level opens. *)
        List.find_map
          (fun m ->
            match resolve_module t ~caller_dir:fi.fi_dir m with
            | Some file when Hashtbl.mem t.defs_tbl (file, f) ->
                Some (file, f)
            | _ -> None)
          fi.fi_opens
  | segments ->
      let f = List.nth segments (List.length segments - 1) in
      let mods = List.filteri (fun i _ -> i < List.length segments - 1) segments in
      (* Same-file nested module first: [Heap.push] from inside
         engine.ml must hit engine.ml's own Heap. *)
      let qualified = String.concat "." (mods @ [ f ]) in
      let same_file =
        match suffix_defs fi qualified with
        | [ d ] -> Some (d.d_file, d.d_name)
        | _ -> None
      in
      if same_file <> None then same_file
      else
        (* Try module segments right-to-left as repo files: for
           [Netsim.Addr.equal], "Addr" wins before "Netsim". *)
        let rec try_from i =
          if i < 0 then None
          else
            let m = List.nth mods i in
            let inner =
              List.filteri (fun j _ -> j > i) mods @ [ f ]
              |> String.concat "."
            in
            match resolve_module t ~caller_dir:fi.fi_dir m with
            | Some file when Hashtbl.mem t.defs_tbl (file, inner) ->
                Some (file, inner)
            | _ -> try_from (i - 1)
        in
        try_from (List.length mods - 1)

(* --- Build --------------------------------------------------------------- *)

let key_compare (f1, n1) (f2, n2) =
  match String.compare f1 f2 with 0 -> String.compare n1 n2 | c -> c

let build parsed =
  let files =
    parsed
    |> List.map (fun (file, str) ->
           let file = normalize file in
           let defs = List.rev (defs_of_items ~file ~prefix:"" str []) in
           {
             fi_file = file;
             fi_module = module_of_file file;
             fi_dir = Filename.dirname file;
             fi_opens = opens_of_items str;
             fi_defs = defs;
           })
    |> List.sort (fun a b -> String.compare a.fi_file b.fi_file)
  in
  let by_module = Hashtbl.create 64 in
  List.iter
    (fun fi ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_module fi.fi_module)
      in
      Hashtbl.replace by_module fi.fi_module (prev @ [ fi.fi_file ]))
    files;
  let defs_tbl = Hashtbl.create 256 in
  List.iter
    (fun fi ->
      List.iter
        (fun d ->
          (* First binding wins on redefinition, matching scoping of
             the last is wrong either way without the typer; keep the
             first so build order (sorted) decides deterministically. *)
          if not (Hashtbl.mem defs_tbl (d.d_file, d.d_name)) then
            Hashtbl.replace defs_tbl (d.d_file, d.d_name) d)
        fi.fi_defs)
    files;
  let t = { files; by_module; defs_tbl; edges = Hashtbl.create 256 } in
  List.iter
    (fun fi ->
      List.iter
        (fun d ->
          let refs, locals = refs_of_body d.d_body in
          let callees =
            List.filter_map (fun lid -> resolve t fi locals lid) refs
            |> List.filter (fun k -> k <> (d.d_file, d.d_name))
            |> List.sort_uniq key_compare
          in
          Hashtbl.replace t.edges (d.d_file, d.d_name) callees)
        fi.fi_defs)
    files;
  t

let parse_string ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  Parse.implementation lexbuf

let build_sources sources =
  build (List.map (fun (file, src) -> (file, parse_string ~file src)) sources)

(* --- Queries ------------------------------------------------------------- *)

let find t ~file ~name = Hashtbl.find_opt t.defs_tbl (normalize file, name)

let callees t ~file ~name =
  Option.value ~default:[] (Hashtbl.find_opt t.edges (normalize file, name))

let defs_in t ~file =
  let file = normalize file in
  match List.find_opt (fun fi -> String.equal fi.fi_file file) t.files with
  | None -> []
  | Some fi -> fi.fi_defs

let files t = List.map (fun fi -> fi.fi_file) t.files

(* Files whose normalized path equals [suffix] or ends in "/suffix":
   lets manifests name "lib/sim/engine.ml" whether the scan ran from
   the repo root or with absolute paths. *)
let files_matching t suffix =
  let suffix = normalize suffix in
  List.filter
    (fun fi ->
      String.equal fi.fi_file suffix
      || String.ends_with ~suffix:("/" ^ suffix) fi.fi_file)
    t.files
  |> List.map (fun fi -> fi.fi_file)

(* --- Reachability -------------------------------------------------------- *)

type reach = {
  r_file : string;
  r_name : string;
  r_depth : int;
  r_via : string;  (* label of the root that first reached this node *)
  r_chain : string list;  (* function names, root first, this node last *)
}

let reachable t ~roots ?max_hops () =
  let visited = Hashtbl.create 256 in
  let out = ref [] in
  let queue = Queue.create () in
  List.iter
    (fun (file, name, label) ->
      List.iter
        (fun rfile ->
          if
            Hashtbl.mem t.defs_tbl (rfile, name)
            && not (Hashtbl.mem visited (rfile, name))
          then begin
            Hashtbl.replace visited (rfile, name) ();
            Queue.add (rfile, name, 0, label, [ name ]) queue
          end)
        (files_matching t file))
    roots;
  while not (Queue.is_empty queue) do
    let file, name, depth, label, chain = Queue.take queue in
    out :=
      {
        r_file = file;
        r_name = name;
        r_depth = depth;
        r_via = label;
        r_chain = List.rev chain;
      }
      :: !out;
    if match max_hops with Some h -> depth < h | None -> true then
      List.iter
        (fun (cfile, cname) ->
          if not (Hashtbl.mem visited (cfile, cname)) then begin
            Hashtbl.replace visited (cfile, cname) ();
            Queue.add (cfile, cname, depth + 1, label, cname :: chain) queue
          end)
        (callees t ~file ~name)
  done;
  List.rev !out
