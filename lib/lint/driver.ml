let passes =
  [
    Pass_d1.pass;
    Pass_d2.pass;
    Pass_d3.pass;
    Pass_d4.pass;
    Pass_d5.pass;
    Pass_h1.pass;
    Pass_p1.pass;
    Pass_p2.pass;
    Pass_p3.pass;
  ]

let known_passes =
  Suppress.meta_pass :: List.map (fun p -> p.Pass.name) passes

let parse_finding ~file ~loc msg =
  let p = loc.Location.loc_start in
  Finding.v ~pass:"parse" ~severity:Finding.Error ~file
    ~line:(max 1 p.Lexing.pos_lnum)
    ~col:(max 0 (p.Lexing.pos_cnum - p.Lexing.pos_bol))
    msg

(* compiler-libs lexing/parsing touches shared global state
   (Docstrings, Location input tracking), so the parse step is the one
   serialized section of the parallel scan; the per-file passes and
   suppression scanning run truly concurrently. *)
let parse_mutex = Mutex.create ()

let parse_file ~file source =
  Mutex.protect parse_mutex (fun () ->
      let lexbuf = Lexing.from_string source in
      Lexing.set_filename lexbuf file;
      match Parse.implementation lexbuf with
      | exception Syntaxerr.Error e ->
          Error
            (parse_finding ~file ~loc:(Syntaxerr.location_of_error e)
               "syntax error")
      | exception Lexer.Error (_, loc) ->
          Error (parse_finding ~file ~loc "lexer error")
      | exception _ ->
          Error (parse_finding ~file ~loc:Location.none "unparseable source")
      | str -> Ok str)

let file_passes ~file str =
  let ctx = { Pass.file } in
  List.concat_map (fun p -> p.Pass.check ctx str) passes

let graph_passes graph =
  List.concat_map
    (fun p ->
      match p.Pass.graph_check with None -> [] | Some f -> f graph)
    passes

(* The per-file stage's output: everything later stages need, so a
   worker domain never re-reads or re-parses. *)
type scanned = {
  s_file : string;
  s_structure : Parsetree.structure option;  (* None: did not parse *)
  s_findings : Finding.t list;  (* per-file pass or parse findings *)
  s_directives : Suppress.directive list;
}

let scan_source ~file source =
  match parse_file ~file source with
  | Error f ->
      {
        s_file = file;
        s_structure = None;
        s_findings = [ f ];
        s_directives = [];
      }
  | Ok str ->
      {
        s_file = file;
        s_structure = Some str;
        s_findings = file_passes ~file str;
        s_directives = Suppress.scan source;
      }

(* Repo passes over the call graph, then per-file suppression over the
   union of both stages' findings. Shared by [run] and [lint_source]
   so a single-file fixture exercises the interprocedural passes too
   (its file path decides which manifest roots it can match). *)
let finalize scanned =
  let graph =
    Callgraph.build
      (List.filter_map
         (fun s ->
           Option.map (fun str -> (s.s_file, str)) s.s_structure)
         scanned)
  in
  let repo_findings = graph_passes graph in
  let for_file file =
    List.filter
      (fun (f : Finding.t) ->
        String.equal (Pass.normalize f.file) (Pass.normalize file))
      repo_findings
  in
  List.fold_left
    (fun (fs, n) s ->
      let found, suppressed =
        Suppress.apply ~file:s.s_file ~known_passes s.s_directives
          (s.s_findings @ for_file s.s_file)
      in
      (found :: fs, n + suppressed))
    ([], 0) scanned

let lint_source ~file source =
  let findings, suppressed = finalize [ scan_source ~file source ] in
  (List.sort Finding.compare (List.concat findings), suppressed)

let rec files_under path =
  if not (Sys.file_exists path) then []
  else if not (Sys.is_directory path) then
    if Filename.check_suffix path ".ml" then [ path ] else []
  else
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.concat_map (fun name ->
             if name = "_build" || (name <> "" && name.[0] = '.') then []
             else files_under (Filename.concat path name))

type report = {
  findings : Finding.t list;
  files : int;
  suppressed : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run ?(jobs = 1) ~paths () =
  let files = Array.of_list (List.concat_map files_under paths) in
  (* Per-file scans fan out over the domain pool; results come back in
     index order (= the sorted directory walk), so findings, baseline
     diffs and reports are byte-identical for every --jobs value. *)
  let scanned, _stats =
    Par.Pool.run ~jobs (Array.length files) (fun i ->
        let file = files.(i) in
        scan_source ~file (read_file file))
  in
  let findings, suppressed = finalize (Array.to_list scanned) in
  {
    findings = List.sort Finding.compare (List.concat findings);
    files = Array.length files;
    suppressed;
  }

(* --- Reporters ----------------------------------------------------------- *)

let summary_line report ~new_findings =
  Printf.sprintf
    "%d file(s), %d finding(s) (%d new), %d suppression(s) honoured"
    report.files
    (List.length report.findings)
    (List.length new_findings)
    report.suppressed

let to_text report ~new_findings =
  let baseline_note =
    if List.length new_findings <> List.length report.findings then
      Printf.sprintf " [%d baselined]"
        (List.length report.findings - List.length new_findings)
    else ""
  in
  String.concat "\n"
    (List.map Finding.to_string new_findings
    @ [ summary_line report ~new_findings ^ baseline_note ])

let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_json (f : Finding.t) =
  Printf.sprintf
    "{\"pass\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
    (esc f.pass)
    (Finding.severity_to_string f.severity)
    (esc f.file) f.line f.col (esc f.message)

let to_json report ~new_findings =
  Printf.sprintf
    "{\"version\":1,\"tool\":\"tensor-lint\",\"summary\":{\"files\":%d,\"findings\":%d,\"new\":%d,\"suppressed\":%d},\"findings\":[%s],\"new_findings\":[%s]}"
    report.files
    (List.length report.findings)
    (List.length new_findings)
    report.suppressed
    (String.concat "," (List.map finding_json report.findings))
    (String.concat "," (List.map finding_json new_findings))

(* GitHub workflow-command annotations for the NEW findings: one
   ::error/::warning line each, so a CI failure lands on the offending
   line of the diff view. Properties take %/CR/LF escapes; the message
   additionally strips commas-in-properties concerns by keeping file
   in properties and everything else in the free-form message. *)
let github_escape ~property s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string b "%25"
      | '\r' -> Buffer.add_string b "%0D"
      | '\n' -> Buffer.add_string b "%0A"
      | ',' when property -> Buffer.add_string b "%2C"
      | ':' when property -> Buffer.add_string b "%3A"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_github ~new_findings =
  String.concat "\n"
    (List.map
       (fun (f : Finding.t) ->
         Printf.sprintf "::%s file=%s,line=%d,col=%d,title=tensor-lint %s::%s"
           (match f.severity with
           | Finding.Error -> "error"
           | Finding.Warning -> "warning")
           (github_escape ~property:true f.file)
           f.line (f.col + 1)
           (github_escape ~property:true f.pass)
           (github_escape ~property:false f.message))
       new_findings)

(* --- --explain ----------------------------------------------------------- *)

(* Assembled at runtime so this literal never looks like a directive
   to the suppression scanner. *)
let suppression_grammar =
  String.concat ""
    [
      "Suppression grammar: a comment on the finding's line (or the \
       line above) of the form\n";
      "    (* lint";
      ": allow <pass>[,<pass>...] \xe2\x80\x94 reason *)\n";
      "The reason is mandatory (an ASCII \"--\" separator also works); \
       reasonless, unknown-pass and unused suppressions are themselves \
       errors under the \"suppress\" meta pass.";
    ]

let explain name =
  match List.find_opt (fun p -> String.equal p.Pass.name name) passes with
  | None -> None
  | Some p ->
      Some
        (String.concat "\n"
           [
             Printf.sprintf "%s (%s) — %s" p.Pass.name
               (Finding.severity_to_string p.Pass.severity)
               p.Pass.doc;
             "";
             "Why: " ^ p.Pass.rationale;
             "";
             "Minimal example that trips it:";
             "    " ^ p.Pass.example;
             "";
             suppression_grammar;
           ])
