let passes =
  [
    Pass_d1.pass;
    Pass_d2.pass;
    Pass_d3.pass;
    Pass_d4.pass;
    Pass_p1.pass;
    Pass_p2.pass;
  ]

let known_passes =
  Suppress.meta_pass :: List.map (fun p -> p.Pass.name) passes

let parse_finding ~file ~loc msg =
  let p = loc.Location.loc_start in
  Finding.v ~pass:"parse" ~severity:Finding.Error ~file
    ~line:(max 1 p.Lexing.pos_lnum)
    ~col:(max 0 (p.Lexing.pos_cnum - p.Lexing.pos_bol))
    msg

let lint_source ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | exception Syntaxerr.Error e ->
      ( [ parse_finding ~file ~loc:(Syntaxerr.location_of_error e)
            "syntax error" ],
        0 )
  | exception Lexer.Error (_, loc) ->
      ([ parse_finding ~file ~loc "lexer error" ], 0)
  | exception _ ->
      ([ parse_finding ~file ~loc:Location.none "unparseable source" ], 0)
  | str ->
      let ctx = { Pass.file } in
      let raw = List.concat_map (fun p -> p.Pass.check ctx str) passes in
      let directives = Suppress.scan source in
      Suppress.apply ~file ~known_passes directives raw

let rec files_under path =
  if not (Sys.file_exists path) then []
  else if not (Sys.is_directory path) then
    if Filename.check_suffix path ".ml" then [ path ] else []
  else
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.concat_map (fun name ->
             if name = "_build" || (name <> "" && name.[0] = '.') then []
             else files_under (Filename.concat path name))

type report = {
  findings : Finding.t list;
  files : int;
  suppressed : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run ~paths =
  let files = List.concat_map files_under paths in
  let findings, suppressed =
    List.fold_left
      (fun (fs, n) file ->
        let found, suppressed = lint_source ~file (read_file file) in
        (found :: fs, n + suppressed))
      ([], 0) files
  in
  {
    findings = List.sort Finding.compare (List.concat findings);
    files = List.length files;
    suppressed;
  }

(* --- Reporters ----------------------------------------------------------- *)

let summary_line report ~new_findings =
  Printf.sprintf
    "%d file(s), %d finding(s) (%d new), %d suppression(s) honoured"
    report.files
    (List.length report.findings)
    (List.length new_findings)
    report.suppressed

let to_text report ~new_findings =
  let baseline_note =
    if List.length new_findings <> List.length report.findings then
      Printf.sprintf " [%d baselined]"
        (List.length report.findings - List.length new_findings)
    else ""
  in
  String.concat "\n"
    (List.map Finding.to_string new_findings
    @ [ summary_line report ~new_findings ^ baseline_note ])

let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_json (f : Finding.t) =
  Printf.sprintf
    "{\"pass\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
    (esc f.pass)
    (Finding.severity_to_string f.severity)
    (esc f.file) f.line f.col (esc f.message)

let to_json report ~new_findings =
  Printf.sprintf
    "{\"version\":1,\"tool\":\"tensor-lint\",\"summary\":{\"files\":%d,\"findings\":%d,\"new\":%d,\"suppressed\":%d},\"findings\":[%s],\"new_findings\":[%s]}"
    report.files
    (List.length report.findings)
    (List.length new_findings)
    report.suppressed
    (String.concat "," (List.map finding_json report.findings))
    (String.concat "," (List.map finding_json new_findings))
