(* d1 — unordered hash-table traversal.

   [Hashtbl.iter]/[fold]/[to_seq*] visit bindings in hash order, which
   depends on insertion history; any such traversal that feeds a RIB
   digest, a snapshot, a health report, or the telemetry stream breaks
   byte-identical replay. The blessed escape hatch is [Sim.Det], the one
   module allowed to collect-then-sort. Functor instances declared in
   the same file ([module M = Hashtbl.Make (...)]) are tracked too. *)

open Parsetree

let traversals = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]
let allow_files = [ "lib/sim/det.ml" ]

let rec pass =
  {
    Pass.name = "d1";
    severity = Finding.Error;
    doc =
      "unordered Hashtbl iteration (use Sim.Det sorted traversals so \
       digests, snapshots and telemetry are replay-stable)";
    rationale =
      "Hashtbl.iter/fold visit keys in hash-bucket order, which depends \
       on insertion history and the per-process hash seed. Any digest, \
       snapshot or telemetry line fed from such a traversal differs \
       between two runs of the same descriptor, breaking replay \
       equality. Sim.Det.bindings is the one blessed collect-then-sort \
       point.";
    example = "let dump tbl = Hashtbl.iter emit tbl";
    check;
    graph_check = None;
  }

and check ctx str =
  if List.exists (Pass.file_is ctx) allow_files then []
  else begin
    let tbl_modules = ref [ "Hashtbl" ] in
    let findings = ref [] in
    (* First sweep: local [module M = Hashtbl.Make (...)] instances. *)
    let collect_modules =
      {
        Ast_iterator.default_iterator with
        module_binding =
          (fun it mb ->
            (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
            | Some name, Pmod_apply ({ pmod_desc = Pmod_ident lid; _ }, _)
              when Pass.flatten lid.txt = [ "Hashtbl"; "Make" ] ->
                tbl_modules := name :: !tbl_modules
            | _ -> ());
            Ast_iterator.default_iterator.module_binding it mb);
      }
    in
    collect_modules.structure collect_modules str;
    let expr it (e : expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt = Longident.Ldot (prefix, fn); loc } ->
          let m = Pass.last prefix in
          if List.mem fn traversals && List.mem m !tbl_modules then
            findings :=
              Pass.finding ctx ~pass ~loc
                "unordered %s.%s traversal; iterate in sorted key order \
                 (Sim.Det) so replay digests cannot depend on hash-table \
                 layout"
                m fn
              :: !findings
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it str;
    !findings
  end
