(* h1 — hot-path allocation budget (interprocedural, warn -> baseline).

   BENCH_seed.json puts the fig5a event loop at ~440 allocated bytes
   per simulated event, and ROADMAP item 2 says that loop is the
   ceiling on everything. This pass walks the call graph from the
   hot-root manifest (Hot_roots.hot_paths) to a small hop budget and
   flags the allocation idioms that creep into handlers three calls
   deep: Printf/Format formatting, list and tuple construction, string
   concatenation, and per-call closure creation.

   Findings are warnings: the committed baseline carries the audited
   remainder (each either inherent — e.g. an event action closure must
   capture state — or queued against the ROADMAP item that removes
   it), so CI fails only when a hot path picks up a NEW allocation.

   Cold contexts are skipped: arguments of raise/failwith/invalid_arg,
   assert bodies, and branches guarded by Telemetry.Gate.on () — those
   run on error paths or behind the telemetry gate, not per event.

   Messages carry the function name and root label but no position, so
   the baseline's (pass, file, message) multiset survives unrelated
   line churn in the same file. *)

open Parsetree

let max_hops = 3

let cold_raisers = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let rec mentions_gate (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Callgraph.flatten txt with
      | [ "Gate"; "on" ] | [ "Telemetry"; "Gate"; "on" ] -> true
      | _ -> false)
  | Pexp_apply (f, args) ->
      mentions_gate f || List.exists (fun (_, a) -> mentions_gate a) args
  | _ -> false

let rec pass =
  {
    Pass.name = "h1";
    severity = Finding.Warning;
    doc =
      "allocation on an audited hot path (Printf/Format, list/tuple \
       construction, string concat, per-call closures within 3 hops of a \
       hot root)";
    rationale =
      "The event loop's throughput ceiling is set by per-event \
       allocation: every cons, tuple, closure or format call inside the \
       engine dispatch, tcp rx/tx, codec or RIB fold paths is paid \
       millions of times per second. The call graph is walked from the \
       Hot_roots.hot_paths manifest to 3 hops, so a helper three calls \
       deep is budgeted like the handler itself. Remaining findings \
       live in the committed baseline with an audit trail; new ones \
       fail CI.";
    example = "let exec t e = Printf.sprintf \"%d\" e.seq |> log";
    check = (fun _ _ -> []);
    graph_check = Some check_graph;
  }

and check_graph g =
  let roots = Hot_roots.as_roots Hot_roots.hot_paths in
  let reach = Callgraph.reachable g ~roots ~max_hops () in
  List.concat_map
    (fun (r : Callgraph.reach) ->
      match Callgraph.find g ~file:r.r_file ~name:r.r_name with
      | None -> []
      | Some d when is_function d.Callgraph.d_body ->
          scan ~file:d.Callgraph.d_file ~fn:r.r_name ~via:r.r_via
            d.Callgraph.d_body
      | Some _ ->
          (* Non-function values run once at module init; the per-call
             budget does not apply. *)
          [])
    reach

and is_function (e : expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

and scan ~file ~fn ~via body =
  let findings = ref [] in
  let hit loc what =
    findings :=
      Pass.graph_finding pass ~file ~loc
        "%s in %s (hot path via %s); hoist it, preallocate, or gate it \
         off the per-event path"
        what fn via
      :: !findings
  in
  (* A cons in the tail of a list literal was already counted with its
     head: [a; b; c] is one finding, not three. Physical identity is
     enough — we only ever compare nodes of the tree being walked. *)
  let counted_tails = ref [] in
  let expr it (e : expression) =
    match e.pexp_desc with
    | Pexp_assert _ -> ()
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
      when List.mem (Callgraph.last_segment txt) cold_raisers
           && List.length (Callgraph.flatten txt) = 1 ->
        ()
    | Pexp_ifthenelse (cond, _, _) when mentions_gate cond -> ()
    | Pexp_ident { txt; loc } -> (
        match Callgraph.flatten txt with
        | "Printf" :: _ | "Format" :: _ -> hit loc "Printf/Format formatting"
        | [ "^" ] | [ "String"; "concat" ] -> hit loc "string concatenation"
        | _ -> ())
    | Pexp_construct ({ txt = Longident.Lident "::"; loc }, Some arg) ->
        if not (List.memq e !counted_tails) then hit loc "list construction";
        (match arg.pexp_desc with
        | Pexp_tuple [ _; tl ] -> counted_tails := tl :: !counted_tails
        | _ -> ());
        (* Walk the pair directly: the argument tuple of :: is the
           cons cell itself, not a separate tuple allocation. *)
        (match arg.pexp_desc with
        | Pexp_tuple parts -> List.iter (it.Ast_iterator.expr it) parts
        | _ -> it.Ast_iterator.expr it arg)
    | Pexp_construct (_, Some { pexp_desc = Pexp_tuple parts; _ }) ->
        (* A multi-argument constructor: the "tuple" is the
           constructor's own argument list, flattened into its block —
           not a separate tuple allocation. *)
        List.iter (it.Ast_iterator.expr it) parts
    | Pexp_match ({ pexp_desc = Pexp_tuple parts; _ }, cases) ->
        (* [match (a, b) with ...] — the pattern-match compiler
           deforests the scrutinee tuple; no allocation happens. *)
        List.iter (it.Ast_iterator.expr it) parts;
        List.iter
          (fun (c : case) ->
            Option.iter (it.Ast_iterator.expr it) c.pc_guard;
            it.Ast_iterator.expr it c.pc_rhs)
          cases
    | Pexp_tuple _ ->
        hit e.pexp_loc "tuple construction";
        Ast_iterator.default_iterator.expr it e
    | Pexp_fun _ | Pexp_function _ ->
        hit e.pexp_loc "per-call closure";
        Ast_iterator.default_iterator.expr it e
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  (* The outermost curried [fun]/[function] chain is the function's own
     parameter list, not a per-call closure: walk only what executes
     when the function is applied. *)
  let rec walk_stripped (e : expression) =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, b) | Pexp_newtype (_, b) -> walk_stripped b
    | Pexp_function cases ->
        List.iter
          (fun (c : case) ->
            Option.iter (it.Ast_iterator.expr it) c.pc_guard;
            it.Ast_iterator.expr it c.pc_rhs)
          cases
    | _ -> it.Ast_iterator.expr it e
  in
  walk_stripped body;
  List.rev !findings
