(* Per-run health report: checker verdicts + SLO budgets over the
   recorded causal spans, rendered as text or JSON. *)

type slo = {
  slo_name : string;
  budget_s : float;
  actual_s : float option; (* worst (longest) instance; None if a span
                              of that name never finished *)
  instances : int;
  slo_ok : bool;
}

(* Engine-cost section: how much simulation work the scenario took, and
   (when the profiler was attached for the run) where it went. Rows are
   plain data so callers without the profiler can still fill the event
   count. *)
type engine_row = {
  er_label : string;
  er_events : int;
  er_wall_s : float;
  er_alloc_bytes : float;
}

type engine_cost = {
  ev_processed : int; (* engine events dispatched during the scenario *)
  profiled : engine_row list; (* empty unless a profiler was attached *)
}

type report = {
  scenario : string;
  checkers : (string * Checker.result) list;
  slos : slo list;
  events_seen : int;
  queue_drops : int;
  bus_dropped : int; (* telemetry ring overwrites during the run *)
  engine : engine_cost option;
  critical_path : Causal.Critical.t option; (* when the recorder ran *)
  faults : string list;
}

(* Budgets are generous upper bounds, not the paper's means: Table 1's
   worst total is ~9.2 s (host failure, cold boot), so 15 s flags only a
   real regression. Budgets apply per span name and are skipped when no
   span of that name was recorded. *)
let default_budgets =
  [
    ("failover", 15.0);
    ("planned_migration", 15.0);
    ("replica_catchup", 5.0);
    ("tcp_replay", 10.0);
    ("bfd_detect", 1.0);
  ]

let slos_of_spans ?(budgets = default_budgets) () =
  List.filter_map
    (fun (name, budget_s) ->
      match Telemetry.Span.find ~name with
      | [] -> None
      | spans ->
          let unfinished =
            List.exists (fun s -> s.Telemetry.Span.stop_at = None) spans
          in
          let worst =
            List.fold_left
              (fun acc s ->
                match s.Telemetry.Span.stop_at with
                | None -> acc
                | Some stop ->
                    Float.max acc
                      (Sim.Time.to_sec_f
                         (Sim.Time.diff stop s.Telemetry.Span.start_at)))
              0.0 spans
          in
          let actual_s = if unfinished then None else Some worst in
          let slo_ok = (not unfinished) && worst <= budget_s in
          Some
            {
              slo_name = name;
              budget_s;
              actual_s;
              instances = List.length spans;
              slo_ok;
            })
    budgets

(* Critical-path section: only meaningful when the causal recorder saw
   the run. Without [?root_span] the recovery roots are tried in order;
   scenarios without any of them just omit the section. *)
let critical_path_of_run ?root_span () =
  if Causal.Recorder.node_count () = 0 then None
  else
    let candidates =
      match root_span with
      | Some name -> [ name ]
      | None -> [ "failover"; "planned_migration" ]
    in
    List.find_map
      (fun name ->
        match Causal.Critical.of_span ~name () with
        | Ok cp -> Some cp
        | Error _ -> None)
      candidates

let make ?budgets ?engine ?root_span ~scenario checker =
  let checkers = Checker.finalize checker in
  {
    scenario;
    checkers;
    slos = slos_of_spans ?budgets ();
    events_seen = Checker.events_seen checker;
    queue_drops = Checker.queue_drop_events checker;
    bus_dropped = Telemetry.Bus.dropped_total ();
    engine;
    critical_path = critical_path_of_run ?root_span ();
    faults = Faults.active ();
  }

let violations r =
  List.concat_map
    (fun (_, res) ->
      match res with Checker.Pass -> [] | Checker.Violations vs -> vs)
    r.checkers

(* Bus overwrites count against health: a checker that never saw the
   evicted events cannot vouch for them, so the check scenarios assert
   zero drops (size the rings up rather than accept overwrite). *)
let ok r =
  violations r = []
  && List.for_all (fun s -> s.slo_ok) r.slos
  && r.bus_dropped = 0

let to_text r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "Health report: %s — %s\n" r.scenario
    (if ok r then "OK" else "UNHEALTHY");
  pf "  events observed: %d" r.events_seen;
  if r.queue_drops > 0 then
    pf " (%d informational queue drop(s))" r.queue_drops;
  pf "\n";
  if r.bus_dropped > 0 then
    pf "  !! telemetry bus dropped %d event(s) to ring overwrite\n"
      r.bus_dropped;
  if r.faults <> [] then
    pf "  !! seeded faults active: %s\n" (String.concat ", " r.faults);
  pf "  invariants:\n";
  List.iter
    (fun (name, res) ->
      match res with
      | Checker.Pass -> pf "    %-24s pass\n" name
      | Checker.Violations vs ->
          pf "    %-24s VIOLATED (%d)\n" name (List.length vs);
          List.iter
            (fun (v : Checker.violation) ->
              pf "      [seq %d, t=%.3fs%s] %s\n" v.event_seq
                (Sim.Time.to_sec_f v.at)
                (if v.span = Telemetry.Span.none then ""
                 else Printf.sprintf ", span %d" v.span)
                v.detail)
            vs)
    r.checkers;
  if r.slos = [] then pf "  SLOs: (no budgeted spans recorded)\n"
  else begin
    pf "  SLOs:\n";
    List.iter
      (fun s ->
        pf "    %-24s %s  %s vs budget %.2fs (%d instance(s))\n" s.slo_name
          (if s.slo_ok then "ok " else "MISS")
          (match s.actual_s with
          | Some a -> Printf.sprintf "worst %.3fs" a
          | None -> "unfinished")
          s.budget_s s.instances)
      r.slos
  end;
  (match r.engine with
  | None -> ()
  | Some ec ->
      pf "  engine cost: %d event(s) dispatched\n" ec.ev_processed;
      List.iter
        (fun row ->
          pf "    %-24s %8d ev  %8.3fms wall  %10.0f B\n" row.er_label
            row.er_events
            (row.er_wall_s *. 1e3)
            row.er_alloc_bytes)
        ec.profiled);
  (match r.critical_path with
  | None -> ()
  | Some cp ->
      String.split_on_char '\n' (Causal.Critical.to_text cp)
      |> List.iter (fun line -> if line <> "" then pf "  %s\n" line));
  Buffer.contents b

let to_json r =
  let b = Buffer.create 2048 in
  let esc = Telemetry.Event.json_escape in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf
    "{\"scenario\":\"%s\",\"ok\":%b,\"events_seen\":%d,\"queue_drops\":%d,\"bus_dropped\":%d,"
    (esc r.scenario) (ok r) r.events_seen r.queue_drops r.bus_dropped;
  (match r.engine with
  | None -> ()
  | Some ec ->
      pf "\"engine\":{\"ev_processed\":%d,\"profiled\":[%s]},"
        ec.ev_processed
        (String.concat ","
           (List.map
              (fun row ->
                Printf.sprintf
                  "{\"label\":\"%s\",\"events\":%d,\"wall_s\":%g,\"alloc_bytes\":%g}"
                  (esc row.er_label) row.er_events row.er_wall_s
                  row.er_alloc_bytes)
              ec.profiled)));
  (match r.critical_path with
  | None -> ()
  | Some cp -> pf "\"critical_path\":%s," (Causal.Critical.to_json cp));
  pf "\"faults\":[%s],"
    (String.concat "," (List.map (fun f -> "\"" ^ esc f ^ "\"") r.faults));
  pf "\"violations_total\":%d," (List.length (violations r));
  pf "\"checkers\":[";
  List.iteri
    (fun i (name, res) ->
      if i > 0 then pf ",";
      let vs = match res with Checker.Pass -> [] | Checker.Violations vs -> vs in
      pf "{\"name\":\"%s\",\"status\":\"%s\",\"violations\":[" (esc name)
        (if vs = [] then "pass" else "violated");
      List.iteri
        (fun j (v : Checker.violation) ->
          if j > 0 then pf ",";
          pf "{\"event_seq\":%d,\"span\":%s,\"t_ns\":%d,\"detail\":\"%s\"}"
            v.event_seq
            (if v.span = Telemetry.Span.none then "null"
             else string_of_int v.span)
            v.at (esc v.detail))
        vs;
      pf "]}")
    r.checkers;
  pf "],\"slos\":[";
  List.iteri
    (fun i s ->
      if i > 0 then pf ",";
      pf "{\"name\":\"%s\",\"budget_s\":%g,\"actual_s\":%s,\"instances\":%d,\"ok\":%b}"
        (esc s.slo_name) s.budget_s
        (match s.actual_s with Some a -> Printf.sprintf "%g" a | None -> "null")
        s.instances s.slo_ok)
    r.slos;
  pf "]}";
  Buffer.contents b
