(** A minimal JSON reader for the repo's own emitters (health reports,
    bench snapshots, JSONL telemetry lines).

    Hand-rolled because the build has no third-party dependencies.
    Standard JSON is accepted; all numbers are read as floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
val parse_exn : string -> t

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects and missing keys. *)

val path : string list -> t -> t option
(** Nested lookup: [path ["a"; "b"] v] is [v.a.b]. *)

val to_float : t -> float option
val to_int : t -> int option
(** Integral [Num]s only. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val keys : t -> string list
(** Object keys in order; [[]] on non-objects. *)
