(* Streaming NSR invariant checkers over the telemetry bus.

   A checker set subscribes to the firehose and folds every entry, in
   global-sequence order, into a small amount of per-invariant state.
   Violations are recorded as they happen (with the ambient causal span
   at emission time); [finalize] runs the end-of-run balance checks
   (queue drain, RIB convergence), unsubscribes, and returns the
   per-checker verdicts. *)

type violation = {
  checker : string;
  event_seq : int;
  span : Telemetry.Span.id;
  at : Sim.Time.t;
  detail : string;
}

type result = Pass | Violations of violation list

type config = {
  peers : string list;
  bfd_tolerance : float;
  ack_deadline_s : float;
}

let default_config = { peers = []; bfd_tolerance = 0.25; ack_deadline_s = 0. }

let names =
  [
    "no_peer_visible_reset";
    "tcp_stream_continuity";
    "held_ack_safety";
    "bfd_detection_bound";
    "rib_convergence";
    "split_brain_exclusion";
    "route_flap_absence";
    "queue_drain";
    "degraded_mode_exclusion";
    "fleet_slo";
  ]

type snapshot = { sn_group : string; sn_node : string; sn_size : int; sn_digest : string; sn_seq : int }

type t = {
  cfg : config;
  mutable sub : Telemetry.Bus.sub option;
  mutable violations : violation list; (* newest first *)
  mutable events_seen : int;
  mutable last_seq : int;
  mutable last_at : Sim.Time.t;
  (* tcp_stream_continuity / held_ack_safety: durable replication
     watermarks. [Wm_durable] is keyed by replicator connection id
     ("service|vrf") while [Repair_import] carries the TCP quad, so the
     stream-continuity check uses the global maximum (exact whenever one
     connection is under repair, which covers every check scenario). *)
  mutable max_wm : int; (* min_int until the first Wm_durable *)
  wm_by_conn : (string, int) Hashtbl.t;
  (* queue_drain: held = released + dropped + shed, per connection. *)
  held : (string, int) Hashtbl.t;
  released : (string, int) Hashtbl.t;
  dropped : (string, int) Hashtbl.t;
  shed : (string, int) Hashtbl.t;
  conn_last_seq : (string, int) Hashtbl.t;
  (* degraded_mode_exclusion: connections currently in degraded
     pass-through. *)
  degraded : (string, unit) Hashtbl.t;
  mutable queue_drop_events : int; (* informational (see netfilter.mli) *)
  (* split_brain_exclusion *)
  primaries : (string, string) Hashtbl.t; (* service -> container id *)
  fenced : (string, unit) Hashtbl.t; (* containers seen stopped/failed *)
  container_host : (string, string) Hashtbl.t;
  dead_hosts : (string, unit) Hashtbl.t;
  (* rib_convergence: snapshots grouped by the event's [vrf] field (the
     harness uses it as a free-form comparison-group key). *)
  mutable snapshots : snapshot list;
  (* fleet_slo: replica accounting per fleet service. An instance is a
     replica; its current container identity arrives on [Fleet_placed]
     and moves on [Migration_done] / [Upgrade_done]; [Container_state]
     of the current container flips it up/down. The invariant is that
     an armed service never reaches zero running replicas. *)
  fl_service_of : (string, string) Hashtbl.t; (* instance -> service *)
  fl_region_of : (string, string) Hashtbl.t; (* instance -> region *)
  fl_container_of : (string, string) Hashtbl.t; (* container -> instance *)
  fl_up : (string, unit) Hashtbl.t; (* instances currently running *)
  fl_running : (string, int) Hashtbl.t; (* service -> running replicas *)
  fl_degraded : (string, unit) Hashtbl.t; (* degraded, not yet re-armed *)
  mutable fl_inflight : int; (* upgrades currently draining *)
}

let violate t checker ~seq ~span ~at detail =
  t.violations <-
    { checker; event_seq = seq; span; at; detail } :: t.violations

let ambient_span () =
  match Telemetry.Span.ambient () with
  | Some sid -> sid
  | None -> Telemetry.Span.none

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let note_primary t ~service ~container =
  Hashtbl.replace t.primaries service container

(* fleet_slo replica accounting. Transitions are idempotent (an
   instance already up stays up) so replayed/duplicate state events
   never skew the count. *)
let fleet_mark_up t instance =
  if Hashtbl.mem t.fl_service_of instance && not (Hashtbl.mem t.fl_up instance)
  then begin
    Hashtbl.replace t.fl_up instance ();
    match Hashtbl.find_opt t.fl_service_of instance with
    | Some svc -> bump t.fl_running svc
    | None -> ()
  end

let fleet_mark_down t instance viol =
  if Hashtbl.mem t.fl_up instance then begin
    Hashtbl.remove t.fl_up instance;
    match Hashtbl.find_opt t.fl_service_of instance with
    | Some svc ->
        let n =
          Option.value (Hashtbl.find_opt t.fl_running svc) ~default:0 - 1
        in
        Hashtbl.replace t.fl_running svc (max 0 n);
        if n <= 0 then
          let region =
            Option.value (Hashtbl.find_opt t.fl_region_of instance) ~default:"?"
          in
          viol "fleet_slo"
            (Printf.sprintf
               "region %s lost all replicas of service %s (last one down: %s)"
               region svc instance)
    | None -> ()
  end

let on_entry t (e : Telemetry.Bus.entry) =
  t.events_seen <- t.events_seen + 1;
  t.last_seq <- e.seq;
  t.last_at <- e.at;
  let viol checker detail =
    violate t checker ~seq:e.seq ~span:(ambient_span ()) ~at:e.at detail
  in
  (* [ack_deadline_s = 0.] leaves the deadline discipline unarmed (no
     degraded mode deployed); the 10% + 100 ms slack absorbs watchdog
     granularity. *)
  let over_deadline held_s =
    t.cfg.ack_deadline_s > 0.
    && held_s > (t.cfg.ack_deadline_s *. 1.1) +. 0.1
  in
  match e.event with
  | Telemetry.Event.Session_down { node; peer; reason } ->
      if List.mem node t.cfg.peers then begin
        viol "no_peer_visible_reset"
          (Printf.sprintf "peer %s saw its session to %s go down (%s)" node
             peer reason);
        if Hashtbl.length t.degraded > 0 then
          viol "degraded_mode_exclusion"
            (Printf.sprintf
               "peer %s saw its session to %s go down (%s) while the service \
                was in degraded pass-through — degradation failed to keep \
                the session alive"
               node peer reason)
      end
  | Wm_durable { conn; ack } ->
      if t.max_wm = min_int || ack > t.max_wm then t.max_wm <- ack;
      let cur = Option.value (Hashtbl.find_opt t.wm_by_conn conn) ~default:min_int in
      if ack > cur then Hashtbl.replace t.wm_by_conn conn ack
  | Repair_import { conn; snd_una; snd_nxt; rcv_nxt; _ } ->
      if snd_una > snd_nxt then
        viol "tcp_stream_continuity"
          (Printf.sprintf "%s: restored snd_una %d ahead of snd_nxt %d" conn
             snd_una snd_nxt);
      if t.max_wm <> min_int && rcv_nxt > t.max_wm then
        viol "tcp_stream_continuity"
          (Printf.sprintf
             "%s: restored rcv_nxt %d is %d byte(s) beyond the durable \
              watermark %d — part of the receive stream was acknowledged \
              but never replicated"
             conn rcv_nxt (rcv_nxt - t.max_wm) t.max_wm)
  | Ack_held { conn; _ } ->
      bump t.held conn;
      Hashtbl.replace t.conn_last_seq conn e.seq;
      if Hashtbl.mem t.degraded conn then
        viol "degraded_mode_exclusion"
          (Printf.sprintf
             "%s: ACK held while in degraded pass-through — nothing may be \
              held once durability was declared unachievable"
             conn)
  | Ack_released { conn; ack; held_s } ->
      bump t.released conn;
      Hashtbl.replace t.conn_last_seq conn e.seq;
      let wm = Option.value (Hashtbl.find_opt t.wm_by_conn conn) ~default:min_int in
      if ack > wm then
        viol "held_ack_safety"
          (Printf.sprintf
             "%s: ACK %d released to the peer beyond the durable watermark %s"
             conn ack
             (if wm = min_int then "(none recorded)" else string_of_int wm));
      if over_deadline held_s then
        viol "degraded_mode_exclusion"
          (Printf.sprintf
             "%s: ACK %d held %.3fs — past the %.3fs degrade deadline \
              without entering degraded mode"
             conn ack held_s t.cfg.ack_deadline_s)
  | Ack_dropped { conn; _ } ->
      bump t.dropped conn;
      Hashtbl.replace t.conn_last_seq conn e.seq
  | Ack_shed { conn; ack; held_s } ->
      bump t.shed conn;
      Hashtbl.replace t.conn_last_seq conn e.seq;
      if over_deadline held_s then
        viol "degraded_mode_exclusion"
          (Printf.sprintf
             "%s: ACK %d shed after %.3fs — held past the %.3fs degrade \
              deadline before degraded mode engaged"
             conn ack held_s t.cfg.ack_deadline_s)
  | Degraded_enter { conn; oldest_held_s; _ } ->
      Hashtbl.replace t.degraded conn ();
      Hashtbl.replace t.conn_last_seq conn e.seq;
      if over_deadline oldest_held_s then
        viol "degraded_mode_exclusion"
          (Printf.sprintf
             "%s: degraded mode engaged with the oldest ACK already held \
              %.3fs — past the %.3fs deadline"
             conn oldest_held_s t.cfg.ack_deadline_s)
  | Degraded_exit { conn; _ } ->
      Hashtbl.remove t.degraded conn;
      Hashtbl.replace t.conn_last_seq conn e.seq
  | Bfd_down { node; peer; silent_s; interval_s; mult; _ } ->
      let bound = interval_s *. float_of_int mult in
      let limit = (bound *. (1.0 +. t.cfg.bfd_tolerance)) +. 0.01 in
      if silent_s > limit then
        viol "bfd_detection_bound"
          (Printf.sprintf
             "%s->%s: declared down after %.3fs of silence; detection bound \
              is %.3fs (%.3fs x %d)"
             node peer silent_s bound interval_s mult)
  | Rib_snapshot { node; vrf; size; digest } ->
      t.snapshots <-
        { sn_group = vrf; sn_node = node; sn_size = size; sn_digest = digest;
          sn_seq = e.seq }
        :: t.snapshots
  | Routes_withdrawn { node; peer; count } ->
      if List.mem node t.cfg.peers then
        viol "route_flap_absence"
          (Printf.sprintf "peer %s received %d withdrawal(s) from %s" node
             count peer)
  | Container_state { id; host; state } ->
      if host <> "" then Hashtbl.replace t.container_host id host;
      (match state with
      | "stopped" | "failed" -> Hashtbl.replace t.fenced id ()
      | _ -> ());
      (match Hashtbl.find_opt t.fl_container_of id with
      | Some inst -> (
          match state with
          | "running" -> fleet_mark_up t inst
          | "stopped" | "failed" -> fleet_mark_down t inst viol
          | _ -> ())
      | None -> ())
  | Host_suspect { host } | Host_failed { host } ->
      Hashtbl.replace t.dead_hosts host ()
  | Replica_promoted { service; container } ->
      (match Hashtbl.find_opt t.primaries service with
      | Some prev when not (String.equal prev container) ->
          let prev_fenced = Hashtbl.mem t.fenced prev in
          let prev_host_dead =
            match Hashtbl.find_opt t.container_host prev with
            | Some h -> Hashtbl.mem t.dead_hosts h
            | None -> false
          in
          if not (prev_fenced || prev_host_dead) then
            viol "split_brain_exclusion"
              (Printf.sprintf
                 "%s promoted as primary of %s while the previous primary %s \
                  was neither fenced nor on a failed host — two speakers \
                  could talk"
                 container service prev)
      | _ -> ());
      note_primary t ~service ~container
  | Queue_dropped _ -> t.queue_drop_events <- t.queue_drop_events + 1
  | Fleet_placed { service; instance; region; container; _ } ->
      Hashtbl.replace t.fl_service_of instance service;
      Hashtbl.replace t.fl_region_of instance region;
      Hashtbl.replace t.fl_container_of container instance;
      fleet_mark_up t instance
  | Migration_done { id; container; _ } ->
      (* A failure migration re-homed the instance: its replica is back
         up in the replacement container. *)
      if Hashtbl.mem t.fl_service_of id then begin
        Hashtbl.replace t.fl_container_of container id;
        fleet_mark_up t id
      end
  | Upgrade_started { instance; wave; bound; _ } ->
      (* The checker keeps its own in-flight count rather than trusting
         the planner's [inflight] field — the count is the oracle. *)
      t.fl_inflight <- t.fl_inflight + 1;
      if t.fl_inflight > bound then
        viol "fleet_slo"
          (Printf.sprintf
             "wave %d: %d concurrent upgrade drains exceed the bound %d \
              (draining %s)"
             wave t.fl_inflight bound instance)
  | Upgrade_done { instance; container; _ } ->
      t.fl_inflight <- max 0 (t.fl_inflight - 1);
      if Hashtbl.mem t.fl_service_of instance then begin
        Hashtbl.replace t.fl_container_of container instance;
        fleet_mark_up t instance
      end
  | Fleet_degraded { instance; _ } -> Hashtbl.replace t.fl_degraded instance ()
  | Fleet_rearmed { instance; _ } -> Hashtbl.remove t.fl_degraded instance
  | _ -> ()

let install ?(cfg = default_config) () =
  let t =
    {
      cfg;
      sub = None;
      violations = [];
      events_seen = 0;
      last_seq = 0;
      last_at = Sim.Time.zero;
      max_wm = min_int;
      wm_by_conn = Hashtbl.create 8;
      held = Hashtbl.create 8;
      released = Hashtbl.create 8;
      dropped = Hashtbl.create 8;
      shed = Hashtbl.create 8;
      conn_last_seq = Hashtbl.create 8;
      degraded = Hashtbl.create 8;
      queue_drop_events = 0;
      primaries = Hashtbl.create 8;
      fenced = Hashtbl.create 8;
      container_host = Hashtbl.create 8;
      dead_hosts = Hashtbl.create 8;
      snapshots = [];
      fl_service_of = Hashtbl.create 64;
      fl_region_of = Hashtbl.create 64;
      fl_container_of = Hashtbl.create 64;
      fl_up = Hashtbl.create 64;
      fl_running = Hashtbl.create 64;
      fl_degraded = Hashtbl.create 16;
      fl_inflight = 0;
    }
  in
  t.sub <- Some (Telemetry.Bus.subscribe (fun e -> on_entry t e));
  t

let violations t = List.rev t.violations
let events_seen t = t.events_seen
let queue_drop_events t = t.queue_drop_events

let check_queue_drain t =
  let keys tbl = Sim.Det.keys ~compare:String.compare tbl in
  let conns =
    List.sort_uniq String.compare
      (keys t.held @ keys t.released @ keys t.dropped @ keys t.shed)
  in
  List.iter
    (fun conn ->
      let get tbl = Option.value (Hashtbl.find_opt tbl conn) ~default:0 in
      let h = get t.held and r = get t.released and d = get t.dropped in
      let s = get t.shed in
      if h <> r + d + s then
        violate t "queue_drain"
          ~seq:(Option.value (Hashtbl.find_opt t.conn_last_seq conn)
                  ~default:t.last_seq)
          ~span:Telemetry.Span.none ~at:t.last_at
          (Printf.sprintf
             "%s: %d ACK(s) held but only %d released + %d dropped + %d \
              shed — %d vanished from the hold queue"
             conn h r d s (h - (r + d + s))))
    conns

let check_rib_convergence t =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun sn ->
      let cur = Option.value (Hashtbl.find_opt groups sn.sn_group) ~default:[] in
      Hashtbl.replace groups sn.sn_group (sn :: cur))
    t.snapshots;
  Sim.Det.iter_sorted ~compare:String.compare
    (fun group sns ->
      match sns with
      | [] | [ _ ] -> ()
      | first :: rest ->
          if
            List.exists
              (fun sn -> not (String.equal sn.sn_digest first.sn_digest))
              rest
          then
            let seq = List.fold_left (fun a sn -> max a sn.sn_seq) 0 sns in
            violate t "rib_convergence" ~seq ~span:Telemetry.Span.none
              ~at:t.last_at
              (Printf.sprintf "%s: RIB views disagree: %s" group
                 (String.concat "; "
                    (List.map
                       (fun sn ->
                         Printf.sprintf "%s=%s (%d prefixes)" sn.sn_node
                           sn.sn_digest sn.sn_size)
                       (List.rev sns)))))
    groups

(* Every degraded instance must have re-armed by end of run: a heal the
   fleet never noticed (or a probe that died with its old container) is
   exactly the silent-degradation failure mode Fig. 7 polices. *)
let check_fleet_rearm t =
  Sim.Det.iter_sorted ~compare:String.compare
    (fun instance () ->
      let region =
        Option.value (Hashtbl.find_opt t.fl_region_of instance) ~default:"?"
      in
      violate t "fleet_slo" ~seq:t.last_seq ~span:Telemetry.Span.none
        ~at:t.last_at
        (Printf.sprintf
           "instance %s (region %s) still degraded at end of run — never \
            re-armed after heal"
           instance region))
    t.fl_degraded

let finalize t =
  (match t.sub with
  | Some s ->
      Telemetry.Bus.unsubscribe s;
      t.sub <- None
  | None -> ());
  check_queue_drain t;
  check_rib_convergence t;
  check_fleet_rearm t;
  let by_checker = violations t in
  List.map
    (fun name ->
      match List.filter (fun v -> String.equal v.checker name) by_checker with
      | [] -> (name, Pass)
      | vs -> (name, Violations vs))
    names
