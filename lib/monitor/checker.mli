(** Streaming runtime verification of the NSR invariants.

    [install] subscribes a checker set to the telemetry firehose
    ({!Telemetry.Bus.subscribe}); every entry is folded, synchronously
    and in global-sequence order, into per-invariant state. The nine
    checkers mirror the paper's correctness claims:

    - [no_peer_visible_reset] — no [Session_down] at a configured peer
      node: the remote AS never sees the BGP session reset (§1, Table 1's
      "ZERO downtime" column).
    - [tcp_stream_continuity] — a restored connection's [Repair_import]
      never resumes beyond the durable receive watermark, and its send
      window is internally consistent (§3.2's byte-stream continuity).
    - [held_ack_safety] — an [Ack_released] never exceeds the connection's
      last [Wm_durable]: ACKs only reach the peer after the bytes they
      cover are replicated (§3.2's hold-ACK rule).
    - [bfd_detection_bound] — a [Bfd_down] fires within
      interval x multiplier (plus tolerance): liveness of detection.
    - [rib_convergence] — all [Rib_snapshot] digests within a comparison
      group agree at end of run (the restored RIB equals what the peer
      advertised).
    - [split_brain_exclusion] — a [Replica_promoted] is only legal once
      the previous primary is fenced ([Container_state] stopped/failed)
      or its host is declared dead (§3.3's fence-before-promote).
    - [route_flap_absence] — no [Routes_withdrawn] delivered at a peer
      node: migrations never flap routes on the wire (§4.4).
    - [queue_drain] — every [Ack_held] is eventually [Ack_released],
      accounted [Ack_dropped], or flushed as [Ack_shed] at degraded-mode
      entry (checked at {!finalize}).
    - [degraded_mode_exclusion] — the degraded-store contract: no ACK is
      held past the configured deadline (an [Ack_released]/[Ack_shed]
      with [held_s] beyond [ack_deadline_s] plus slack, or a
      [Degraded_enter] arriving that late, is a violation), nothing is
      held while degraded, and no configured peer sees a [Session_down]
      while any connection is in degraded pass-through — suspending NSR
      must keep the session alive, or it bought nothing.

    [Queue_dropped] events are informational only: the no-consumer drop
    of a dying instance's FIN/RST is load-bearing NSR behaviour (see
    {!Netfilter}). *)

type violation = {
  checker : string;
  event_seq : int;  (** Bus sequence number of the offending entry. *)
  span : Telemetry.Span.id;
      (** Ambient causal span when the entry was emitted;
          {!Telemetry.Span.none} for end-of-run checks. *)
  at : Sim.Time.t;
  detail : string;
}

type result = Pass | Violations of violation list

type config = {
  peers : string list;
      (** Node names of remote-AS routers: events at these nodes are the
          peer-visible surface. *)
  bfd_tolerance : float;
      (** Fractional slack on the BFD detection bound (default 0.25). *)
  ack_deadline_s : float;
      (** The held-ACK degrade deadline, in seconds; [0.] (default)
          leaves [degraded_mode_exclusion]'s deadline discipline unarmed
          (deployments without degraded mode hold ACKs indefinitely by
          design). Checked with 10% + 100 ms slack for watchdog
          granularity. *)
}

val default_config : config

val names : string list
(** The ten checker names, in report order. The tenth, [fleet_slo],
    watches fleet campaigns: no region may ever lose all replicas of a
    service, rolling-upgrade drains may never exceed the wave's
    concurrency bound, and every instance that shed into degraded mode
    must have re-armed by end of run. *)

type t

val install : ?cfg:config -> unit -> t
(** Subscribes to the firehose. Entries emitted before [install] (or
    while {!Telemetry.Gate} is off) are not observed. *)

val note_primary : t -> service:string -> container:string -> unit
(** Seeds (or updates) the current primary of [service], so the first
    [Replica_promoted] has a predecessor to check against. *)

val finalize : t -> (string * result) list
(** Unsubscribes, runs the end-of-run checks (queue drain, RIB
    convergence) and returns every checker's verdict, in {!names}
    order. Idempotent state: call once per run. *)

val violations : t -> violation list
(** Violations recorded so far, oldest first (live view; [finalize]
    appends the end-of-run ones). *)

val events_seen : t -> int

val queue_drop_events : t -> int
(** Count of informational [Queue_dropped] entries observed. *)
