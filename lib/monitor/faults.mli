(** Hidden fault flags for mutation-testing the runtime checkers.

    Every flag corresponds to exactly one {!Checker} and is read at one
    surgical point in the product code; all flags default to off, and
    nothing in a normal run touches them. The mutation tests in
    [test/test_monitor.ml] seed each fault and assert that it trips its
    checker — and only its checker — which is what proves the checkers
    are not vacuously green. *)

val peer_reset : bool ref
(** [no_peer_visible_reset]: shortly after a resume, bounce the restored
    session with a Cease NOTIFICATION. Auto-reconnect heals the tables,
    so the only surviving symptom is the peer-visible reset.
    Self-clearing after the first bounce. *)

val repair_gap : bool ref
(** [tcp_stream_continuity]: report [rcv_nxt + 1] in the
    [Repair_import] event — a one-byte receive-stream gap. *)

val early_ack_release : bool ref
(** [held_ack_safety]: release one held ACK beyond the durable
    replication watermark. *)

val bfd_slow_detect : bool ref
(** [bfd_detection_bound]: double the armed detection window while the
    advertised interval × multiplier stays nominal. *)

val skip_rib_restore : bool ref
(** [rib_convergence]: skip the RIB checkpoint scan during bootstrap
    recovery, so the promoted replica starts from an empty table. *)

val no_fence : bool ref
(** [split_brain_exclusion]: promote the replica without stopping the
    old primary container first. *)

val flap_on_migration : bool ref
(** [route_flap_absence]: withdraw and immediately re-announce one
    originated prefix after a planned migration completes. *)

val leak_held_acks : bool ref
(** [queue_drain]: silently swallow one ready-to-release held ACK
    (no release event, no reinjection) — the peer's cumulative ACKs
    hide it, but the held/released balance no longer closes.
    Self-clearing after the first leak. *)

val late_degrade : bool ref
(** [degraded_mode_exclusion]: arm the replicator's degrade watchdog at
    twice the configured deadline, so during a store outage held ACKs
    (and the shed that eventually frees them) age past the bound the
    session negotiated — exactly the hold-timer exposure the checker
    exists to catch. *)

val exceed_wave_bound : bool ref
(** [fleet_slo]: the fleet upgrade-wave planner launches one extra
    drain beyond the wave's concurrency bound — a correct planner never
    does, so the checker's own in-flight count must catch it. *)

val names : unit -> string list
(** All flag names, in declaration order. *)

val active : unit -> string list
(** Names of the currently-set flags. *)

val doc : string -> string option
val set : string -> bool -> bool
(** [set name v] flips the named flag; [false] if no such flag. *)

val reset : unit -> unit
(** Clears every flag. *)

val with_fault : bool ref -> (unit -> 'a) -> 'a
(** [with_fault flag k] runs [k] with [flag] set, restoring it after. *)
