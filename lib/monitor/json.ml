(* A minimal JSON reader for the repo's own emitters (health reports,
   bench snapshots, JSONL telemetry). Hand-rolled because the build
   deliberately has no third-party dependencies. Accepts standard JSON;
   numbers become floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at %d: %s" pos msg))

let parse_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail !pos (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail !pos (Printf.sprintf "expected %s" lit)
  in
  let utf8_add buf code =
    (* Encode a Unicode scalar value as UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_str () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail !pos "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail !pos "truncated \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub s !pos 4)
                with _ -> fail !pos "bad \\u escape"
              in
              pos := !pos + 4;
              utf8_add buf code
          | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_num () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail start (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_str ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_str () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail !pos "expected , or } in object"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail !pos "expected , or ] in array"
          in
          List (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_num ()
    | Some c -> fail !pos (Printf.sprintf "unexpected %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let parse s =
  match parse_string s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> failwith ("Json.parse: " ^ msg)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let path keys v =
  List.fold_left
    (fun acc k -> match acc with Some v -> member k v | None -> None)
    (Some v) keys

let to_float = function
  | Num f -> Some f
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None

let to_bool = function
  | Bool b -> Some b
  | _ -> None

let to_list = function
  | List l -> Some l
  | _ -> None

let keys = function
  | Obj kvs -> List.map fst kvs
  | _ -> []
