(** Per-run health reports: checker verdicts plus SLO budgets.

    A report couples the {!Checker} verdicts with budget checks over the
    recorded {!Telemetry.Span}s (failover duration, planned-migration
    duration, replica catch-up, TCP replay, BFD detection). Budgets are
    only evaluated for span names that actually occur in the run, so the
    same report works for every scenario. *)

type slo = {
  slo_name : string;  (** Span name the budget applies to. *)
  budget_s : float;
  actual_s : float option;
      (** Longest instance, seconds; [None] if an instance never
          finished (always a miss). *)
  instances : int;
  slo_ok : bool;
}

type engine_row = {
  er_label : string;  (** Event attribution label (e.g. ["tcp.proc"]). *)
  er_events : int;
  er_wall_s : float;  (** Host wall seconds spent in this label. *)
  er_alloc_bytes : float;
}
(** One row of profiled engine cost, as attributed by [Prof.Profiler]
    (reported as plain data so this library does not depend on it). *)

type engine_cost = {
  ev_processed : int;
      (** Engine events dispatched while the scenario ran. *)
  profiled : engine_row list;
      (** Per-label cost rows; empty unless a profiler was attached. *)
}

type report = {
  scenario : string;
  checkers : (string * Checker.result) list;
  slos : slo list;
  events_seen : int;
  queue_drops : int;  (** Informational [Queue_dropped] count. *)
  bus_dropped : int;
      (** Telemetry ring-buffer overwrites ({!Telemetry.Bus.dropped_total})
          at the moment the report was cut. Non-zero fails {!ok}: a
          checker cannot vouch for events it never saw. *)
  engine : engine_cost option;  (** Engine-cost section, when measured. *)
  critical_path : Causal.Critical.t option;
      (** Recovery critical path, present when the causal recorder
          ([Causal.Recorder]) captured the run and a recovery root span
          (["failover"], else ["planned_migration"], or the [?root_span]
          given to {!make}) finished. Informational: never affects
          {!ok}. *)
  faults : string list;  (** Seeded faults active when the report was cut. *)
}

val default_budgets : (string * float) list
(** [(span_name, budget_seconds)]: failover 15 s, planned_migration
    15 s, replica_catchup 5 s, tcp_replay 10 s, bfd_detect 1 s. *)

val make :
  ?budgets:(string * float) list ->
  ?engine:engine_cost ->
  ?root_span:string ->
  scenario:string ->
  Checker.t ->
  report
(** Finalizes the checker set (see {!Checker.finalize}) and evaluates
    the budgets against the current span table. [engine] attaches the
    engine-cost section; bus drops are read from the live bus;
    [root_span] names the span to extract the critical path from
    (default: try ["failover"], then ["planned_migration"]). *)

val ok : report -> bool
(** No violations, every evaluated SLO within budget, and zero telemetry
    bus drops. *)

val violations : report -> Checker.violation list

val to_text : report -> string
val to_json : report -> string
