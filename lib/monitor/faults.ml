(* Hidden fault flags, one per checker, used by the mutation tests to
   prove the checkers are not vacuously green: seeding a fault must trip
   exactly the corresponding checker and nothing else.

   Each flag is read at one surgical point in the product code. Faults
   are either genuinely behavioral (skip a fence, leak a queue) when the
   misbehavior provably does not cascade into other invariants, or they
   corrupt the *observable signal* at the event-emission site (repair
   byte counters) when real corruption would stall the scenario and trip
   several checkers at once. *)

type flag = { name : string; doc : string; on : bool ref }

(* Deliberately process-global, not Domain.DLS: every flag below is
   created exactly once at module initialization (on the main domain),
   so a domain-local registry would be empty on campaign workers. The
   flags are test-only toggles that default to off and are written only
   by the sequential mutation tests — never during a parallel
   campaign — so sharing them read-only across domains is safe. *)
(* lint: allow d4 -- flags are minted once at init; a DLS registry would be empty on worker domains *)
let registry : flag list ref = ref []

let make name doc =
  let on = ref false in
  registry := !registry @ [ { name; doc; on } ];
  on

let peer_reset =
  make "peer_reset" "bounce the resumed session with a Cease (peer-visible reset)"

let repair_gap =
  make "repair_gap" "skew rcv_nxt reported at TCP repair import by one byte"

let early_ack_release =
  make "early_ack_release" "release one held ACK beyond the durable watermark"

let bfd_slow_detect =
  make "bfd_slow_detect" "double the BFD detect window but report the nominal interval"

let skip_rib_restore =
  make "skip_rib_restore" "skip the RIB checkpoint restore in bootstrap recovery"

let no_fence =
  make "no_fence" "promote the replica without stopping the old primary"

let flap_on_migration =
  make "flap_on_migration" "withdraw and re-announce one prefix after a planned migration"

let leak_held_acks =
  make "leak_held_acks" "silently swallow one ready-to-release held ACK"

let late_degrade =
  make "late_degrade" "arm the degrade watchdog at twice the configured deadline"

let exceed_wave_bound =
  make "exceed_wave_bound"
    "launch one rolling-upgrade drain past the wave's concurrency bound"

let names () = List.map (fun f -> f.name) !registry
let active () = List.filter_map (fun f -> if !(f.on) then Some f.name else None) !registry
let doc name =
  List.find_opt (fun f -> f.name = name) !registry
  |> Option.map (fun f -> f.doc)

let set name v =
  match List.find_opt (fun f -> f.name = name) !registry with
  | Some f ->
      f.on := v;
      true
  | None -> false

let reset () = List.iter (fun f -> f.on := false) !registry

let with_fault on k =
  on := true;
  Fun.protect ~finally:(fun () -> on := false) k
